//! Detection of IP addresses embedded in hostnames.
//!
//! Access networks commonly derive PTR records from the interface address
//! (paper Figure 3b: `50-236-216-122-static.hfc.comcastbusiness.net`,
//! `209-201-58-109.dia.stat.centurylink.net`). A digit run that is really
//! an octet of such an embedded address must not be mistaken for an ASN —
//! §3.1 classifies an extraction overlapping an embedded IP address as a
//! false positive.
//!
//! [`embedded_ip_spans`] finds the byte spans of the interface's own
//! address embedded in a hostname, in the forms observed in the wild:
//! four octets in forward or reverse order, separated consistently by `.`
//! or `-`, each octet plain or zero-padded to three digits.

/// An IPv4 address as four octets. A plain array keeps the substrate
/// crates decoupled from `std::net` parsing behaviour.
pub type Ipv4 = [u8; 4];

/// Formats an address in dotted-quad notation.
pub fn ipv4_to_string(ip: Ipv4) -> String {
    format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3])
}

/// Parses dotted-quad notation (no leading-zero tolerance beyond plain
/// `u8` parsing). Returns `None` on malformed input.
pub fn parse_ipv4(s: &str) -> Option<Ipv4> {
    let mut it = s.split('.');
    let mut ip = [0u8; 4];
    for slot in ip.iter_mut() {
        let part = it.next()?;
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        *slot = part.parse().ok()?;
    }
    if it.next().is_some() {
        return None;
    }
    Some(ip)
}

/// Byte spans of `addr` embedded in `hostname`.
///
/// Checks forward (`a.b.c.d`) and reverse (`d.c.b.a`) octet order with
/// `.` or `-` separators, each octet either plain or zero-padded to three
/// digits (all octets padded, or none — mixed padding is not a
/// convention seen in PTR data). Octet sequences must be delimited: the
/// bytes before and after the matched region must not be digits, so the
/// octets of `10.2.3.4` are not found inside `110.2.3.45`.
pub fn embedded_ip_spans(hostname: &str, addr: Ipv4) -> Vec<(usize, usize)> {
    let h = hostname.as_bytes();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let forward = addr;
    let reverse = [addr[3], addr[2], addr[1], addr[0]];
    for octets in [forward, reverse] {
        for sep in [b'.', b'-'] {
            for padded in [false, true] {
                let needle = render_octets(octets, sep, padded);
                find_delimited(h, needle.as_bytes(), &mut spans);
            }
        }
    }
    spans.sort();
    spans.dedup();
    spans
}

/// True if the byte range `[start, end)` overlaps any span in `spans`.
pub fn overlaps_any(spans: &[(usize, usize)], start: usize, end: usize) -> bool {
    spans.iter().any(|&(s, e)| start < e && s < end)
}

/// Renders four octets with the given separator, optionally zero-padded
/// to three digits each.
fn render_octets(octets: Ipv4, sep: u8, padded: bool) -> String {
    let mut s = String::with_capacity(15);
    for (i, o) in octets.iter().enumerate() {
        if i > 0 {
            s.push(sep as char);
        }
        if padded {
            s.push_str(&format!("{o:03}"));
        } else {
            s.push_str(&o.to_string());
        }
    }
    s
}

/// Appends every digit-delimited occurrence of `needle` in `h` to `out`.
fn find_delimited(h: &[u8], needle: &[u8], out: &mut Vec<(usize, usize)>) {
    if needle.is_empty() || needle.len() > h.len() {
        return;
    }
    for start in 0..=(h.len() - needle.len()) {
        if &h[start..start + needle.len()] != needle {
            continue;
        }
        let end = start + needle.len();
        let left_ok = start == 0 || !h[start - 1].is_ascii_digit();
        let right_ok = end == h.len() || !h[end].is_ascii_digit();
        if left_ok && right_ok {
            out.push((start, end));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render() {
        assert_eq!(parse_ipv4("192.0.2.1"), Some([192, 0, 2, 1]));
        assert_eq!(ipv4_to_string([192, 0, 2, 1]), "192.0.2.1");
        assert_eq!(parse_ipv4("192.0.2"), None);
        assert_eq!(parse_ipv4("192.0.2.1.5"), None);
        assert_eq!(parse_ipv4("192.0.2.256"), None);
        assert_eq!(parse_ipv4("a.b.c.d"), None);
        assert_eq!(parse_ipv4(""), None);
        assert_eq!(parse_ipv4("1..2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.1234"), None);
    }

    #[test]
    fn comcast_example_from_figure3b() {
        let h = "50-236-216-122-static.hfc.comcastbusiness.net";
        let spans = embedded_ip_spans(h, [50, 236, 216, 122]);
        assert_eq!(spans, vec![(0, 14)]);
        // The "122" octet (bytes 11..14) overlaps the span.
        assert!(overlaps_any(&spans, 11, 14));
    }

    #[test]
    fn centurylink_example_from_figure3b() {
        let h = "209-201-58-109.dia.stat.centurylink.net";
        let spans = embedded_ip_spans(h, [209, 201, 58, 109]);
        assert_eq!(spans, vec![(0, 14)]);
        assert!(overlaps_any(&spans, 0, 3)); // the leading "209"
    }

    #[test]
    fn dotted_and_reversed_forms() {
        let spans = embedded_ip_spans("host.1.2.3.4.example.com", [1, 2, 3, 4]);
        assert_eq!(spans, vec![(5, 12)]);
        // Reverse-octet PTR style.
        let spans = embedded_ip_spans("4.3.2.1.rdns.example.com", [1, 2, 3, 4]);
        assert_eq!(spans, vec![(0, 7)]);
    }

    #[test]
    fn zero_padded_form() {
        let h = "050-236-216-122.example.net";
        let spans = embedded_ip_spans(h, [50, 236, 216, 122]);
        assert_eq!(spans, vec![(0, 15)]);
    }

    #[test]
    fn requires_digit_delimiters() {
        // `110.2.3.45` must not contain 10.2.3.4.
        assert!(embedded_ip_spans("110.2.3.45.example.com", [10, 2, 3, 4]).is_empty());
        // But non-digit neighbours are fine.
        assert_eq!(
            embedded_ip_spans("x10.2.3.4y.example.com", [10, 2, 3, 4]),
            vec![(1, 9)]
        );
    }

    #[test]
    fn different_address_not_found() {
        assert!(embedded_ip_spans("1.2.3.4.example.com", [1, 2, 3, 5]).is_empty());
    }

    #[test]
    fn palindromic_address_found_once() {
        let spans = embedded_ip_spans("1.2.2.1.example.com", [1, 2, 2, 1]);
        // Forward and reverse render identically; dedup leaves one span.
        assert_eq!(spans, vec![(0, 7)]);
    }

    #[test]
    fn multiple_occurrences() {
        let spans = embedded_ip_spans("1-2-3-4.a.1-2-3-4.example.com", [1, 2, 3, 4]);
        assert_eq!(spans, vec![(0, 7), (10, 17)]);
    }

    #[test]
    fn overlap_edges() {
        let spans = vec![(5, 10)];
        assert!(!overlaps_any(&spans, 0, 5)); // touching on the left
        assert!(!overlaps_any(&spans, 10, 12)); // touching on the right
        assert!(overlaps_any(&spans, 9, 11));
        assert!(overlaps_any(&spans, 4, 6));
        assert!(overlaps_any(&spans, 6, 8)); // contained
    }
}
