//! Naming conventions: ordered sets of regexes for one suffix.
//!
//! A *naming convention* (NC) is what Hoiho learns per suffix — one or
//! more regexes, tried in order, the first match providing the extracted
//! ASN (§3.5). Conventions serialize to a plain text form (suffix header
//! followed by indented regexes) so learned sets can be published and
//! reloaded, mirroring the paper's released data supplement.

use crate::regex::{CompiledRegex, Regex};
use std::fmt;

/// A learned naming convention for one suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamingConvention {
    /// The registrable-domain suffix this NC applies to.
    pub suffix: String,
    /// The regexes, in evaluation (rank) order.
    pub regexes: Vec<Regex>,
}

impl NamingConvention {
    /// Builds a convention from parts.
    pub fn new(suffix: &str, regexes: Vec<Regex>) -> NamingConvention {
        NamingConvention { suffix: suffix.to_string(), regexes }
    }

    /// Number of regexes in the convention.
    pub fn len(&self) -> usize {
        self.regexes.len()
    }

    /// True if the convention has no regexes.
    pub fn is_empty(&self) -> bool {
        self.regexes.is_empty()
    }

    /// Extracts the embedded ASN from `hostname` (lowercased by the
    /// caller or not — matching is done on a lowercased copy).
    ///
    /// Returns `None` when no regex matches or the captured digits exceed
    /// the 32-bit ASN space.
    pub fn extract(&self, hostname: &str) -> Option<u32> {
        let lower = hostname.to_ascii_lowercase();
        for r in &self.regexes {
            if let Some(digits) = r.extract(&lower) {
                return digits.parse::<u32>().ok();
            }
        }
        None
    }

    /// True if any regex in the convention matches `hostname`.
    pub fn matches(&self, hostname: &str) -> bool {
        let lower = hostname.to_ascii_lowercase();
        self.regexes.iter().any(|r| r.is_match(&lower))
    }

    /// Lowers the convention into compiled matcher programs for hot
    /// paths: compile once (e.g. at model load), extract per query.
    /// Extraction semantics are identical to [`NamingConvention::extract`].
    pub fn compile(&self) -> CompiledConvention {
        CompiledConvention {
            suffix: self.suffix.clone(),
            programs: self.regexes.iter().map(CompiledRegex::compile).collect(),
        }
    }

    /// Parses the text form produced by `Display`: a suffix line followed
    /// by one indented regex per line. Blank lines and `#` comments are
    /// ignored. Multiple conventions can be concatenated; see
    /// [`parse_conventions`].
    pub fn parse_block(text: &str) -> Result<NamingConvention, String> {
        let mut all = parse_conventions(text)?;
        match all.len() {
            1 => Ok(all.remove(0)),
            n => Err(format!("expected one convention block, found {n}")),
        }
    }
}

impl fmt::Display for NamingConvention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.suffix)?;
        for r in &self.regexes {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// A [`NamingConvention`] lowered to compiled matcher programs — what
/// the serving tier runs per query after compiling once at model load.
#[derive(Debug, Clone)]
pub struct CompiledConvention {
    suffix: String,
    programs: Vec<CompiledRegex>,
}

impl CompiledConvention {
    /// The registrable-domain suffix this convention applies to.
    pub fn suffix(&self) -> &str {
        &self.suffix
    }

    /// [`NamingConvention::extract`] over the compiled programs.
    pub fn extract(&self, hostname: &str) -> Option<u32> {
        self.extract_lower(&hostname.to_ascii_lowercase())
    }

    /// Like [`CompiledConvention::extract`], but assumes `lower` is
    /// already lowercased — the serving tier lowercases once per query.
    pub fn extract_lower(&self, lower: &str) -> Option<u32> {
        for p in &self.programs {
            if let Some(digits) = p.extract(lower) {
                return digits.parse::<u32>().ok();
            }
        }
        None
    }

    /// True if any program in the convention matches `hostname`.
    pub fn matches(&self, hostname: &str) -> bool {
        let lower = hostname.to_ascii_lowercase();
        self.programs.iter().any(|p| p.is_match(&lower))
    }
}

/// Parses a file of conventions: unindented lines start a new suffix,
/// indented lines add regexes to the current one.
pub fn parse_conventions(text: &str) -> Result<Vec<NamingConvention>, String> {
    let mut out: Vec<NamingConvention> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() || raw.trim_start().starts_with('#') {
            continue;
        }
        let indented = raw.starts_with(' ') || raw.starts_with('\t');
        let line = raw.trim();
        if indented {
            let Some(cur) = out.last_mut() else {
                return Err(format!("line {}: regex before any suffix", lineno + 1));
            };
            let r = Regex::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            cur.regexes.push(r);
        } else {
            out.push(NamingConvention::new(line, Vec::new()));
        }
    }
    for nc in &out {
        if nc.regexes.is_empty() {
            return Err(format!("suffix {} has no regexes", nc.suffix));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nc() -> NamingConvention {
        NamingConvention::new(
            "equinix.com",
            vec![
                Regex::parse(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$").unwrap(),
                Regex::parse(r"^(\d+)-.+\.equinix\.com$").unwrap(),
            ],
        )
    }

    #[test]
    fn extract_first_match_wins() {
        let c = nc();
        assert_eq!(c.extract("p714.sgw.equinix.com"), Some(714));
        assert_eq!(c.extract("24482-fr5-ix.equinix.com"), Some(24482));
        assert_eq!(c.extract("netflix.zh2.corp.eu.equinix.com"), None);
        assert!(c.matches("S714.SGW.EQUINIX.COM"));
        assert_eq!(c.extract("S714.SGW.EQUINIX.COM"), Some(714));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let c = nc();
        let text = c.to_string();
        let parsed = NamingConvention::parse_block(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn parse_multiple_blocks() {
        let text = "\
# learned conventions
equinix.com
  ^(\\d+)-.+\\.equinix\\.com$

nts.ch
  as(\\d+)\\.nts\\.ch$
";
        let all = parse_conventions(text).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].suffix, "equinix.com");
        assert_eq!(all[1].suffix, "nts.ch");
        assert_eq!(all[1].regexes.len(), 1);
    }

    #[test]
    fn parse_errors_reported() {
        assert!(parse_conventions("  ^(\\d+)$\n").is_err()); // regex before suffix
        assert!(parse_conventions("x.com\n").is_err()); // suffix without regexes
        assert!(parse_conventions("x.com\n  ((\n").is_err()); // bad regex
        assert!(NamingConvention::parse_block("a.com\n  (\\d+)x$\nb.com\n  (\\d+)y$\n").is_err());
    }

    #[test]
    fn compiled_convention_matches_interpreter() {
        let c = nc();
        let cc = c.compile();
        assert_eq!(cc.suffix(), "equinix.com");
        for h in [
            "p714.sgw.equinix.com",
            "24482-fr5-ix.equinix.com",
            "netflix.zh2.corp.eu.equinix.com",
            "S714.SGW.EQUINIX.COM",
            "",
        ] {
            assert_eq!(cc.extract(h), c.extract(h), "{h:?}");
            assert_eq!(cc.matches(h), c.matches(h), "{h:?}");
            assert_eq!(cc.extract_lower(&h.to_ascii_lowercase()), c.extract(h), "{h:?}");
        }
    }

    #[test]
    fn extract_rejects_oversized() {
        let c = NamingConvention::new("x.com", vec![Regex::parse(r"^(\d+)\.x\.com$").unwrap()]);
        assert_eq!(c.extract("99999999999.x.com"), None);
        assert_eq!(c.extract("4294967295.x.com"), Some(u32::MAX));
    }
}
