//! Training data: observations of (hostname, interface address, training
//! ASN), grouped by suffix.
//!
//! The training ASN is whatever a heuristic router-ownership method
//! (RouterToAsAssignment, bdrmapIT) inferred for the router owning the
//! interface, or the ASN an operator recorded in PeeringDB (paper §3).
//! Hoiho learns one naming convention per *suffix* — the registrable
//! domain of the hostname per the public suffix list.
//!
//! [`SuffixTraining`] precomputes, per hostname, everything evaluation
//! needs repeatedly: the lowercased hostname, its local part, the spans of
//! the interface address embedded in the hostname, and whether an apparent
//! ASN is present (§3.1).

use crate::apparent::apparent_asn;
use crate::iputil::{embedded_ip_spans, Ipv4};
use hoiho_psl::PublicSuffixList;
use std::collections::BTreeMap;

/// One training observation: an interface with a hostname and the ASN the
/// training source attributes to its router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The PTR hostname (stored lowercased).
    pub hostname: String,
    /// The interface's IPv4 address.
    pub addr: Ipv4,
    /// The training ASN for the router owning this interface.
    pub training_asn: u32,
}

impl Observation {
    /// Creates an observation, lowercasing the hostname.
    pub fn new(hostname: &str, addr: Ipv4, training_asn: u32) -> Observation {
        Observation { hostname: hostname.to_ascii_lowercase(), addr, training_asn }
    }
}

/// A hostname with evaluation-relevant facts precomputed.
#[derive(Debug, Clone)]
pub struct HostObs {
    /// Lowercased full hostname.
    pub hostname: String,
    /// The local part (hostname minus `.suffix`), empty when the hostname
    /// equals the suffix.
    pub local: String,
    /// The interface address.
    pub addr: Ipv4,
    /// The training ASN.
    pub training_asn: u32,
    /// Spans of the interface address embedded in the hostname.
    pub ip_spans: Vec<(usize, usize)>,
    /// Span of the apparent ASN, if the hostname contains one.
    pub apparent: Option<(usize, usize)>,
}

impl HostObs {
    /// Builds a [`HostObs`] for a hostname known to end in `.suffix`.
    pub fn build(obs: &Observation, suffix: &str) -> HostObs {
        let hostname = obs.hostname.clone();
        let local = crate::label::local_part(&hostname, suffix).unwrap_or("").to_string();
        let ip_spans = embedded_ip_spans(&hostname, obs.addr);
        let apparent = apparent_asn(&hostname, obs.training_asn, &ip_spans);
        HostObs { hostname, local, addr: obs.addr, training_asn: obs.training_asn, ip_spans, apparent }
    }

    /// True if the hostname contains an apparent ASN (§3.1): a digit run
    /// congruent with the training ASN, outside any embedded IP address.
    pub fn has_apparent(&self) -> bool {
        self.apparent.is_some()
    }
}

/// All hostnames of one suffix, ready for learning.
#[derive(Debug, Clone)]
pub struct SuffixTraining {
    /// The registrable-domain suffix (e.g. `equinix.com`).
    pub suffix: String,
    /// The precomputed hostname observations.
    pub hosts: Vec<HostObs>,
}

impl SuffixTraining {
    /// Builds a suffix group directly from observations (each hostname
    /// must end in `.suffix`).
    pub fn build(suffix: &str, obs: &[Observation]) -> SuffixTraining {
        SuffixTraining {
            suffix: suffix.to_string(),
            hosts: obs.iter().map(|o| HostObs::build(o, suffix)).collect(),
        }
    }

    /// Number of hostnames with an apparent ASN.
    pub fn apparent_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.has_apparent()).count()
    }
}

/// A flat collection of observations, convertible into per-suffix groups.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    obs: Vec<Observation>,
}

impl TrainingSet {
    /// Creates an empty training set.
    pub fn new() -> TrainingSet {
        TrainingSet::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, o: Observation) {
        self.obs.push(o);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// All observations.
    pub fn observations(&self) -> &[Observation] {
        &self.obs
    }

    /// Groups observations by registrable domain. Hostnames without a
    /// registrable domain (bare public suffixes, malformed names) are
    /// dropped. Groups come back sorted by suffix for determinism.
    pub fn by_suffix(&self, psl: &PublicSuffixList) -> Vec<SuffixTraining> {
        let mut groups: BTreeMap<String, Vec<&Observation>> = BTreeMap::new();
        for o in &self.obs {
            if let Some(suffix) = psl.registrable_domain(&o.hostname) {
                groups.entry(suffix).or_default().push(o);
            }
        }
        groups
            .into_iter()
            .map(|(suffix, list)| SuffixTraining {
                hosts: list.iter().map(|o| HostObs::build(o, &suffix)).collect(),
                suffix,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_by_suffix() {
        let psl = PublicSuffixList::builtin();
        let mut ts = TrainingSet::new();
        ts.push(Observation::new("A.B.equinix.com", [1, 2, 3, 4], 100));
        ts.push(Observation::new("c.equinix.com", [1, 2, 3, 5], 200));
        ts.push(Observation::new("as1.nts.ch", [1, 2, 3, 6], 300));
        ts.push(Observation::new("com", [1, 2, 3, 7], 400)); // no registrable
        let groups = ts.by_suffix(&psl);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].suffix, "equinix.com");
        assert_eq!(groups[0].hosts.len(), 2);
        assert_eq!(groups[0].hosts[0].hostname, "a.b.equinix.com"); // lowercased
        assert_eq!(groups[0].hosts[0].local, "a.b");
        assert_eq!(groups[1].suffix, "nts.ch");
    }

    #[test]
    fn host_obs_precomputation() {
        let o = Observation::new("as24940.akl-ix.nz", [5, 6, 7, 8], 24940);
        let h = HostObs::build(&o, "akl-ix.nz");
        assert_eq!(h.local, "as24940");
        assert_eq!(h.apparent, Some((2, 7)));
        assert!(h.ip_spans.is_empty());
    }

    #[test]
    fn host_obs_ip_spans_block_apparent() {
        let o = Observation::new(
            "209-201-58-109.dia.stat.centurylink.net",
            [209, 201, 58, 109],
            209,
        );
        let h = HostObs::build(&o, "centurylink.net");
        assert!(!h.ip_spans.is_empty());
        assert_eq!(h.apparent, None);
    }

    #[test]
    fn apparent_count() {
        let obs = vec![
            Observation::new("as100.x.example.com", [1, 1, 1, 1], 100),
            Observation::new("nothing.x.example.com", [1, 1, 1, 2], 100),
        ];
        let st = SuffixTraining::build("example.com", &obs);
        assert_eq!(st.apparent_count(), 1);
        assert_eq!(st.hosts[1].apparent, None);
    }
}
