//! Regex and convention evaluation: the §3.1 classification rules and the
//! ATP ranking metric.
//!
//! Per hostname, against a regex (or ordered set of regexes):
//!
//! * **TP** — the extraction is congruent with the training ASN (exactly,
//!   or via the typo rule in [`crate::apparent::congruence`]) and is not
//!   part of an embedded IP address.
//! * **FP** — an extraction happened but is incongruent, or overlaps an
//!   embedded representation of the interface's own address (Figure 3b).
//! * **FN** — no extraction, but the hostname contains an apparent ASN.
//! * **TN** — no extraction and no apparent ASN (no penalty, no credit).
//!
//! The ranking metric is **ATP = TP − (FP + FN)** — deliberately punishing
//! missed hostnames, because the goal is a convention matching as many
//! hostnames as possible rather than maximising PPV on a subset (§3.1).

use crate::apparent::congruence;
use crate::iputil::overlaps_any;
use crate::regex::{CompiledRegex, MatchResult, Regex};
use crate::training::HostObs;

/// Per-hostname evaluation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Extraction congruent with the training ASN. Carries the extracted
    /// value (the literal digits parsed, not the training ASN).
    TruePositive(u32),
    /// Extraction incongruent, or part of an embedded IP address.
    FalsePositive(u32),
    /// No extraction, but an apparent ASN was present.
    FalseNegative,
    /// No extraction and no apparent ASN.
    TrueNegative,
}

impl Outcome {
    /// The extracted value, for TP or FP outcomes.
    pub fn extracted(&self) -> Option<u32> {
        match *self {
            Outcome::TruePositive(v) | Outcome::FalsePositive(v) => Some(v),
            _ => None,
        }
    }
}

/// Aggregate counts over a hostname set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counts {
    /// True positives.
    pub tp: u32,
    /// False positives.
    pub fp: u32,
    /// False negatives.
    pub fnn: u32,
    /// True negatives (unmatched hostnames without an apparent ASN).
    pub tn: u32,
    /// Distinct training ASNs among TP hostnames — the "unique ASNs
    /// congruent with training data" of §4's classification rules.
    /// Kept sorted ascending and deduplicated (set semantics on a flat
    /// vector: bulk column folds move their already-sorted uniques in
    /// without per-node allocation).
    pub unique_tp_asns: Vec<u32>,
    /// Distinct extracted values across TPs and FPs. Sorted ascending
    /// and deduplicated, like `unique_tp_asns`.
    pub unique_extracted: Vec<u32>,
}

impl Counts {
    /// Absolute true positives: `TP − (FP + FN)` (§3.1).
    pub fn atp(&self) -> i64 {
        i64::from(self.tp) - (i64::from(self.fp) + i64::from(self.fnn))
    }

    /// Positive predictive value `TP / (TP + FP)`; 0 when nothing matched.
    pub fn ppv(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            f64::from(self.tp) / f64::from(denom)
        }
    }

    /// Number of hostnames the convention matched.
    pub fn matched(&self) -> u32 {
        self.tp + self.fp
    }

    /// Total hostnames evaluated.
    pub fn total(&self) -> u32 {
        self.tp + self.fp + self.fnn + self.tn
    }

    pub(crate) fn record(&mut self, host: &HostObs, outcome: Outcome) {
        match outcome {
            Outcome::TruePositive(v) => {
                self.tp += 1;
                insert_unique(&mut self.unique_tp_asns, host.training_asn);
                insert_unique(&mut self.unique_extracted, v);
            }
            Outcome::FalsePositive(v) => {
                self.fp += 1;
                insert_unique(&mut self.unique_extracted, v);
            }
            Outcome::FalseNegative => self.fnn += 1,
            Outcome::TrueNegative => self.tn += 1,
        }
    }
}

/// Sorted-unique insert for the flat set vectors of [`Counts`].
fn insert_unique(v: &mut Vec<u32>, x: u32) {
    if let Err(i) = v.binary_search(&x) {
        v.insert(i, x);
    }
}

/// The §3.1 outcome once a regex has matched `host` with a capture at
/// byte range `s..e`.
fn classify_capture(host: &HostObs, s: usize, e: usize) -> Outcome {
    let digits = &host.hostname[s..e];
    // Extracted numbers longer than an u32 can never be ASNs; treat
    // them as incongruent extractions.
    let value = digits.parse::<u64>().unwrap_or(u64::MAX);
    let value32 = u32::try_from(value.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
    if overlaps_any(&host.ip_spans, s, e) {
        return Outcome::FalsePositive(value32);
    }
    if congruence(digits, host.training_asn).is_congruent() {
        return Outcome::TruePositive(value32);
    }
    Outcome::FalsePositive(value32)
}

/// A match decides the host's outcome only if it captured something; a
/// captureless match falls through to the next regex in the set.
fn capture_outcome(m: &MatchResult, host: &HostObs) -> Option<Outcome> {
    let &(s, e) = m.captures.first()?;
    Some(classify_capture(host, s, e))
}

/// The outcome of a hostname no regex in the set claimed.
pub fn negative_outcome(host: &HostObs) -> Outcome {
    if host.has_apparent() {
        Outcome::FalseNegative
    } else {
        Outcome::TrueNegative
    }
}

/// Classifies one hostname against an ordered list of regexes
/// (first-match-wins, the semantics of a convention set).
///
/// `Regex::find` runs each regex's cached compiled program, so this no
/// longer falls back to the tree-walking interpreter; the interpreter
/// path survives as [`classify_host_interpreted`] for differential tests.
pub fn classify_host(regexes: &[Regex], host: &HostObs) -> Outcome {
    for r in regexes {
        // `match_capture` is the allocation-free cell primitive: a
        // captureless match falls through exactly like `find` + an
        // empty capture list would.
        let Some(cap) = r.program().match_capture(&host.hostname) else { continue };
        if let Some((s, e)) = cap {
            return classify_capture(host, s, e);
        }
    }
    negative_outcome(host)
}

/// [`classify_host`] on the tree-walking interpreter. Exists only as the
/// differential oracle for the compiled engine; production callers want
/// [`classify_host`].
pub fn classify_host_interpreted(regexes: &[Regex], host: &HostObs) -> Outcome {
    for r in regexes {
        let Some(m) = r.find_interpreted(&host.hostname) else { continue };
        if let Some(o) = capture_outcome(&m, host) {
            return o;
        }
    }
    negative_outcome(host)
}

/// [`classify_host`] over compiled programs.
pub fn classify_host_compiled(programs: &[CompiledRegex], host: &HostObs) -> Outcome {
    for p in programs {
        let Some(cap) = p.match_capture(&host.hostname) else { continue };
        if let Some((s, e)) = cap {
            return classify_capture(host, s, e);
        }
    }
    negative_outcome(host)
}

/// The per-regex "column cell" of the learner's outcome matrix: `Some`
/// exactly when `program` would decide this host's outcome in a set
/// (matched with a capture), `None` when the set falls through.
pub fn regex_hit(program: &CompiledRegex, host: &HostObs) -> Option<Outcome> {
    let (s, e) = program.match_capture(&host.hostname)??;
    Some(classify_capture(host, s, e))
}

/// [`regex_hit`] with a caller-held one-entry span cache. Pools of
/// sibling regexes overwhelmingly extract the *same* span from a given
/// host, and classification (digit parse, IP-overlap, congruence)
/// depends only on the span — so a caller evaluating many programs
/// against one host can reuse the previous outcome whenever the span
/// repeats. Reset the cache (or pass a fresh `None`) per host.
pub fn regex_hit_cached(
    program: &CompiledRegex,
    host: &HostObs,
    cache: &mut Option<((usize, usize), Outcome)>,
) -> Option<Outcome> {
    let (s, e) = program.match_capture(&host.hostname)??;
    if let Some((span, out)) = cache {
        if *span == (s, e) {
            return Some(*out);
        }
    }
    let out = classify_capture(host, s, e);
    *cache = Some(((s, e), out));
    Some(out)
}

/// Evaluates an ordered regex list over a hostname set.
pub fn evaluate(regexes: &[Regex], hosts: &[HostObs]) -> Counts {
    let mut c = Counts::default();
    for h in hosts {
        c.record(h, classify_host(regexes, h));
    }
    c
}

/// [`evaluate`] on the interpreter oracle ([`classify_host_interpreted`]).
pub fn evaluate_interpreted(regexes: &[Regex], hosts: &[HostObs]) -> Counts {
    let mut c = Counts::default();
    for h in hosts {
        c.record(h, classify_host_interpreted(regexes, h));
    }
    c
}

/// [`evaluate`] over compiled programs.
pub fn evaluate_compiled(programs: &[CompiledRegex], hosts: &[HostObs]) -> Counts {
    let mut c = Counts::default();
    for h in hosts {
        c.record(h, classify_host_compiled(programs, h));
    }
    c
}

/// Evaluates a single regex over a hostname set.
pub fn evaluate_one(regex: &Regex, hosts: &[HostObs]) -> Counts {
    evaluate(std::slice::from_ref(regex), hosts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Observation;

    fn host(hostname: &str, addr: [u8; 4], asn: u32) -> HostObs {
        HostObs::build(&Observation::new(hostname, addr, asn), suffix_of(hostname))
    }

    // Tests use two-label suffixes ending .com / .ch / .net etc.
    fn suffix_of(hostname: &str) -> &str {
        let parts: Vec<&str> = hostname.rsplitn(3, '.').collect();
        // parts = [tld, dom, rest...] reversed
        if parts.len() >= 2 {
            let idx = hostname.len() - parts[0].len() - parts[1].len() - 1;
            &hostname[idx..]
        } else {
            hostname
        }
    }

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn tp_exact() {
        let h = host("as15576.nts.ch", [1, 1, 1, 1], 15576);
        let o = classify_host(&[rx(r"as(\d+)\.nts\.ch$")], &h);
        assert_eq!(o, Outcome::TruePositive(15576));
    }

    #[test]
    fn tp_typo() {
        let h = host("as24940.akl-ix.nz", [1, 1, 1, 1], 20940);
        let o = classify_host(&[rx(r"^as(\d+)\.akl-ix\.nz$")], &h);
        assert_eq!(o, Outcome::TruePositive(24940));
    }

    #[test]
    fn fp_incongruent() {
        let h = host("as15576.nts.ch", [1, 1, 1, 1], 44879);
        let o = classify_host(&[rx(r"as(\d+)\.nts\.ch$")], &h);
        assert_eq!(o, Outcome::FalsePositive(15576));
    }

    #[test]
    fn fp_embedded_ip_even_when_congruent() {
        // Training ASN 122 coincides with the last octet (Figure 3b).
        let h = host(
            "50-236-216-122-static.hfc.comcastbusiness.net",
            [50, 236, 216, 122],
            122,
        );
        let o = classify_host(&[rx(r"(\d+)-static\.hfc\.comcastbusiness\.net$")], &h);
        assert_eq!(o, Outcome::FalsePositive(122));
    }

    #[test]
    fn fn_when_apparent_unmatched() {
        let h = host("as15576.nts.ch", [1, 1, 1, 1], 15576);
        let o = classify_host(&[rx(r"^x(\d+)\.nts\.ch$")], &h);
        assert_eq!(o, Outcome::FalseNegative);
    }

    #[test]
    fn tn_when_no_apparent() {
        let h = host("core1.nts.ch", [1, 1, 1, 1], 15576);
        let o = classify_host(&[rx(r"as(\d+)\.nts\.ch$")], &h);
        assert_eq!(o, Outcome::TrueNegative);
    }

    #[test]
    fn first_match_wins_in_sets() {
        let h = host("p714.sgw.equinix.com", [1, 1, 1, 1], 714);
        let set = [rx(r"^p(\d+)\.[^\.]+\.equinix\.com$"), rx(r"(\d+)")];
        assert_eq!(classify_host(&set, &h), Outcome::TruePositive(714));
        // Reversed order: the catch-all fires first and grabs "714" too.
        let set = [rx(r"p(\d+)\."), rx(r"^x(\d+)$")];
        assert_eq!(classify_host(&set, &h), Outcome::TruePositive(714));
    }

    #[test]
    fn counts_and_metrics() {
        let hosts = vec![
            host("as100.x.example.com", [1, 1, 1, 1], 100),
            host("as200.x.example.com", [1, 1, 1, 2], 200),
            host("as300.x.example.com", [1, 1, 1, 3], 999), // FP
            host("as400.y.example.com", [1, 1, 1, 4], 400), // FN (regex needs .x.)
            host("plain.x.example.com", [1, 1, 1, 5], 500), // TN
        ];
        let c = evaluate(&[rx(r"^as(\d+)\.x\.example\.com$")], &hosts);
        assert_eq!((c.tp, c.fp, c.fnn, c.tn), (2, 1, 1, 1));
        assert_eq!(c.atp(), 0);
        assert!((c.ppv() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.matched(), 3);
        assert_eq!(c.total(), 5);
        assert_eq!(c.unique_tp_asns.len(), 2);
        assert_eq!(c.unique_extracted.len(), 3);
    }

    #[test]
    fn empty_set_all_negative() {
        let hosts = vec![
            host("as100.x.example.com", [1, 1, 1, 1], 100),
            host("plain.x.example.com", [1, 1, 1, 2], 100),
        ];
        let c = evaluate(&[], &hosts);
        assert_eq!((c.tp, c.fp, c.fnn, c.tn), (0, 0, 1, 1));
        assert_eq!(c.ppv(), 0.0);
    }

    #[test]
    fn oversized_extraction_is_fp() {
        let h = host("as99999999999.x.example.com", [1, 1, 1, 1], 100);
        let o = classify_host(&[rx(r"^as(\d+)\.x\.example\.com$")], &h);
        assert!(matches!(o, Outcome::FalsePositive(_)));
    }
}
