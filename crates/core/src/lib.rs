//! # hoiho — learning regexes that extract ASNs from hostnames
//!
//! A from-scratch implementation of the learning system described in
//! Luckie, Marder, Fletcher, Huffaker & claffy, *Learning to Extract and
//! Use ASNs in Hostnames*, IMC 2020. Operators often encode the
//! Autonomous System Number (ASN) that operates a router into the DNS
//! hostname of the router's interfaces; this crate learns, per domain
//! suffix, a *naming convention* (NC) — a small set of regular
//! expressions — that extracts those ASNs, using noisy training ASNs
//! produced by heuristic router-ownership inference (or recorded in
//! PeeringDB).
//!
//! ## Pipeline (paper section in parentheses)
//!
//! 1. [`training`] — assemble observations (hostname, interface address,
//!    training ASN) and group them by public-suffix+1 (§3).
//! 2. [`phases::base`] — generate base regexes from hostname structure
//!    (§3.2).
//! 3. [`phases::merge`] — merge regexes differing by one simple string
//!    into alternations (§3.3).
//! 4. [`phases::classes`] — specialise punctuation-exclusion components
//!    into character classes observed in matches (§3.4).
//! 5. [`phases::sets`] — combine regexes into convention sets (§3.5).
//! 6. [`select`] — pick the best convention, preferring fewer regexes
//!    (§3.6).
//! 7. [`classify`] — label each NC good / promising / single / poor (§4),
//!    and [`taxonomy`] — the Table 1 shape taxonomy.
//!
//! Evaluation throughout uses the §3.1 rules implemented in [`eval`]:
//! true positives tolerate single-digit typos (Damerau-Levenshtein
//! distance one with matching first/last digits, [`editdist`]), and
//! numbers that are fragments of an IP address embedded in the hostname
//! ([`iputil`]) are false positives.
//!
//! ## Quick start
//!
//! ```
//! use hoiho::training::{Observation, TrainingSet};
//! use hoiho::learner::{learn_suffix, LearnConfig};
//!
//! let mut ts = TrainingSet::new();
//! for (asn, host) in [
//!     (64500u32, "as64500.border1.example.com"),
//!     (64501, "as64501.border2.example.com"),
//!     (64502, "as64502.core.example.com"),
//! ] {
//!     ts.push(Observation::new(host, [192, 0, 2, 1], asn));
//! }
//! let suffixes = ts.by_suffix(&hoiho_psl::PublicSuffixList::builtin());
//! let learned = hoiho::learner::learn_suffix(&suffixes[0], &LearnConfig::default()).unwrap();
//! assert_eq!(learned.convention.extract("as64501.border2.example.com"), Some(64501));
//! ```

pub mod apparent;
pub mod classify;
pub mod convention;
pub mod editdist;
pub mod eval;
pub mod iputil;
pub mod label;
pub mod learner;
pub mod phases;
pub mod quality;
pub mod regex;
pub mod select;
pub mod taxonomy;
pub mod training;

pub use convention::NamingConvention;
pub use learner::{learn_all, learn_suffix, LearnConfig, LearnedConvention};
pub use regex::Regex;
