//! `hoiho` — command-line interface to the learner, in the spirit of
//! scamper's `sc_hoiho`.
//!
//! ```text
//! hoiho learn <training-file>              learn conventions, print them
//! hoiho apply <conventions-file> [file]    extract ASNs from hostnames
//! ```
//!
//! The training file has one observation per line:
//!
//! ```text
//! # asn  interface-address  hostname
//! 64500  192.0.2.1          as64500-ae1.fra.example.net
//! ```
//!
//! `learn` prints conventions in the same text format
//! [`hoiho::convention::parse_conventions`] reads (suffix line, indented
//! regexes), with per-convention statistics as `#` comments — ready to
//! feed back into `apply`. `apply` reads hostnames (one per line, from a
//! file or stdin) and prints `hostname<TAB>ASN` for every extraction.

use hoiho::convention::parse_conventions;
use hoiho::learner::{learn_all, LearnConfig};
use hoiho::training::{Observation, TrainingSet};
use hoiho_psl::PublicSuffixList;
use std::io::{BufRead, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(|s| s.as_str()) {
        Some("learn") if args.len() == 2 => learn(&args[1]),
        Some("apply") if args.len() == 2 || args.len() == 3 => {
            apply(&args[1], args.get(2).map(|s| s.as_str()))
        }
        _ => {
            eprintln!("usage: hoiho learn <training-file>");
            eprintln!("       hoiho apply <conventions-file> [hostnames-file]");
            eprintln!("(see crate docs for the file formats)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hoiho: {e}");
            ExitCode::FAILURE
        }
    }
}

fn learn(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let training = parse_training(&text)?;
    let psl = PublicSuffixList::builtin();
    let groups = training.by_suffix(&psl);
    let learned = learn_all(&groups, &LearnConfig::default());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# hoiho: {} observations, {} suffixes, {} conventions",
        training.len(),
        groups.len(),
        learned.len()
    )
    .ok();
    for lc in &learned {
        writeln!(
            out,
            "# {}: {} TP={} FP={} FN={} ATP={} PPV={:.1}%{}",
            lc.convention.suffix,
            lc.class.label(),
            lc.counts.tp,
            lc.counts.fp,
            lc.counts.fnn,
            lc.counts.atp(),
            lc.counts.ppv() * 100.0,
            if lc.single { " single" } else { "" },
        )
        .ok();
        write!(out, "{}", lc.convention).ok();
    }
    Ok(())
}

fn apply(conv_path: &str, hosts_path: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(conv_path)
        .map_err(|e| format!("cannot read {conv_path}: {e}"))?;
    let conventions = parse_conventions(&text)?;
    let input: Box<dyn Read> = match hosts_path {
        Some(p) => Box::new(
            std::fs::File::open(p).map_err(|e| format!("cannot open {p}: {e}"))?,
        ),
        None => Box::new(std::io::stdin()),
    };
    let reader = std::io::BufReader::new(input);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let hostname = line.trim();
        if hostname.is_empty() || hostname.starts_with('#') {
            continue;
        }
        let hit = conventions.iter().find_map(|nc| {
            hostname
                .to_ascii_lowercase()
                .ends_with(&format!(".{}", nc.suffix))
                .then(|| nc.extract(hostname))
                .flatten()
        });
        match hit {
            Some(asn) => writeln!(out, "{hostname}\t{asn}").ok(),
            None => writeln!(out, "{hostname}\t-").ok(),
        };
    }
    Ok(())
}

/// Parses the training file format: `asn addr hostname` per line.
fn parse_training(text: &str) -> Result<TrainingSet, String> {
    let mut ts = TrainingSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let mut it = line.split_whitespace();
        let asn: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad ASN"))?;
        let addr = it
            .next()
            .and_then(hoiho::iputil::parse_ipv4)
            .ok_or_else(|| err("bad address"))?;
        let hostname = it.next().ok_or_else(|| err("missing hostname"))?;
        if it.next().is_some() {
            return Err(err("trailing fields"));
        }
        ts.push(Observation::new(hostname, addr, asn));
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_parser_accepts_valid_lines() {
        let ts = parse_training(
            "# comment\n64500 192.0.2.1 as64500.x.example.net\n\n64501 192.0.2.2 as64501.y.example.net\n",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.observations()[0].training_asn, 64500);
        assert_eq!(ts.observations()[0].hostname, "as64500.x.example.net");
    }

    #[test]
    fn training_parser_rejects_malformed() {
        assert!(parse_training("x 192.0.2.1 host").is_err());
        assert!(parse_training("1 not-an-ip host").is_err());
        assert!(parse_training("1 192.0.2.1").is_err());
        assert!(parse_training("1 192.0.2.1 host extra").is_err());
    }
}
