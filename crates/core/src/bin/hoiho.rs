//! `hoiho` — command-line interface to the learner, in the spirit of
//! scamper's `sc_hoiho`.
//!
//! ```text
//! hoiho learn <training-file>              learn conventions, print them
//! hoiho learn --sim <seed>                 learn from a synthetic Internet
//! hoiho apply <conventions-file> [file]    extract ASNs from hostnames
//! ```
//!
//! `learn` additionally accepts `--trace <out.json>`: the learner then
//! records one tracing span per pipeline phase per suffix (§3.2
//! generate, §3.3 merge, §3.4 classes, §3.5 sets, §3.6 select, plus an
//! enclosing `learn_suffix` span) and writes them as Chrome
//! trace-event JSON loadable in `chrome://tracing` or Perfetto.
//! `--sim <seed>` sidesteps the training file: it generates the tiny
//! synthetic Internet from `hoiho-netsim` at that seed and trains on
//! its named interfaces' ground truth.
//!
//! The training file has one observation per line:
//!
//! ```text
//! # asn  interface-address  hostname
//! 64500  192.0.2.1          as64500-ae1.fra.example.net
//! ```
//!
//! `learn` prints conventions in the same text format
//! [`hoiho::convention::parse_conventions`] reads (suffix line, indented
//! regexes), with per-convention statistics as `#` comments — ready to
//! feed back into `apply`. `apply` reads hostnames (one per line, from a
//! file or stdin) and prints `hostname<TAB>ASN` for every extraction.

use hoiho::convention::parse_conventions;
use hoiho::learner::{learn_all_traced, LearnConfig};
use hoiho::training::{Observation, TrainingSet};
use hoiho_obs::Tracer;
use hoiho_psl::PublicSuffixList;
use std::io::{BufRead, Read, Write};
use std::process::ExitCode;

/// Where `learn` gets its observations.
enum LearnSource {
    /// A training file (`asn addr hostname` lines).
    File(String),
    /// The `hoiho-netsim` tiny synthetic Internet at this seed.
    Sim(u64),
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!("usage: hoiho learn <training-file> [--trace <out.json>]");
        eprintln!("       hoiho learn --sim <seed> [--trace <out.json>]");
        eprintln!("       hoiho apply <conventions-file> [hostnames-file]");
        eprintln!("(see crate docs for the file formats)");
        ExitCode::from(2)
    };
    let result = match args.first().map(|s| s.as_str()) {
        Some("learn") => {
            let trace_path = match take_flag_value(&mut args, "--trace") {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("hoiho: {e}");
                    return usage();
                }
            };
            let sim_seed = match take_flag_value(&mut args, "--sim") {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("hoiho: {e}");
                    return usage();
                }
            };
            let source = match (sim_seed, args.len()) {
                (Some(seed), 1) => match seed.parse() {
                    Ok(s) => LearnSource::Sim(s),
                    Err(_) => {
                        eprintln!("hoiho: --sim takes an integer seed, got {seed:?}");
                        return usage();
                    }
                },
                (None, 2) => LearnSource::File(args[1].clone()),
                _ => return usage(),
            };
            learn(source, trace_path.as_deref())
        }
        Some("apply") if args.len() == 2 || args.len() == 3 => {
            apply(&args[1], args.get(2).map(|s| s.as_str()))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hoiho: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Removes `flag <value>` from `args`; errors when the flag is last
/// (no value) or repeated.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    if args.iter().any(|a| a == flag) {
        return Err(format!("{flag} given twice"));
    }
    Ok(Some(value))
}

fn learn(source: LearnSource, trace_path: Option<&str>) -> Result<(), String> {
    let training = match source {
        LearnSource::File(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_training(&text)?
        }
        LearnSource::Sim(seed) => sim_training(seed),
    };
    let psl = PublicSuffixList::builtin();
    let groups = training.by_suffix(&psl);
    let tracer = trace_path.map(|_| Tracer::new());
    let learned = learn_all_traced(&groups, &LearnConfig::default(), tracer.as_ref());
    if let (Some(path), Some(tracer)) = (trace_path, &tracer) {
        std::fs::write(path, tracer.to_chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("hoiho: wrote {} spans to {path}", tracer.len());
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# hoiho: {} observations, {} suffixes, {} conventions",
        training.len(),
        groups.len(),
        learned.len()
    )
    .ok();
    for lc in &learned {
        writeln!(
            out,
            "# {}: {} TP={} FP={} FN={} ATP={} PPV={:.1}%{}",
            lc.convention.suffix,
            lc.class.label(),
            lc.counts.tp,
            lc.counts.fp,
            lc.counts.fnn,
            lc.counts.atp(),
            lc.counts.ppv() * 100.0,
            if lc.single { " single" } else { "" },
        )
        .ok();
        write!(out, "{}", lc.convention).ok();
    }
    Ok(())
}

fn apply(conv_path: &str, hosts_path: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(conv_path)
        .map_err(|e| format!("cannot read {conv_path}: {e}"))?;
    let conventions = parse_conventions(&text)?;
    let input: Box<dyn Read> = match hosts_path {
        Some(p) => Box::new(
            std::fs::File::open(p).map_err(|e| format!("cannot open {p}: {e}"))?,
        ),
        None => Box::new(std::io::stdin()),
    };
    let reader = std::io::BufReader::new(input);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let hostname = line.trim();
        if hostname.is_empty() || hostname.starts_with('#') {
            continue;
        }
        let hit = conventions.iter().find_map(|nc| {
            hostname
                .to_ascii_lowercase()
                .ends_with(&format!(".{}", nc.suffix))
                .then(|| nc.extract(hostname))
                .flatten()
        });
        match hit {
            Some(asn) => writeln!(out, "{hostname}\t{asn}").ok(),
            None => writeln!(out, "{hostname}\t-").ok(),
        };
    }
    Ok(())
}

/// Ground-truth training set from the tiny synthetic Internet: every
/// named interface contributes `(hostname, addr, router owner)`.
fn sim_training(seed: u64) -> TrainingSet {
    let internet = hoiho_netsim::Internet::generate(&hoiho_netsim::SimConfig::tiny(seed));
    let mut ts = TrainingSet::new();
    for (iface, owner) in internet.named_interfaces() {
        let hostname = iface.hostname.as_deref().expect("named interface has a hostname");
        ts.push(Observation::new(hostname, iface.addr.to_be_bytes(), owner));
    }
    ts
}

/// Parses the training file format: `asn addr hostname` per line.
fn parse_training(text: &str) -> Result<TrainingSet, String> {
    let mut ts = TrainingSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let mut it = line.split_whitespace();
        let asn: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad ASN"))?;
        let addr = it
            .next()
            .and_then(hoiho::iputil::parse_ipv4)
            .ok_or_else(|| err("bad address"))?;
        let hostname = it.next().ok_or_else(|| err("missing hostname"))?;
        if it.next().is_some() {
            return Err(err("trailing fields"));
        }
        ts.push(Observation::new(hostname, addr, asn));
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_parser_accepts_valid_lines() {
        let ts = parse_training(
            "# comment\n64500 192.0.2.1 as64500.x.example.net\n\n64501 192.0.2.2 as64501.y.example.net\n",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.observations()[0].training_asn, 64500);
        assert_eq!(ts.observations()[0].hostname, "as64500.x.example.net");
    }

    #[test]
    fn training_parser_rejects_malformed() {
        assert!(parse_training("x 192.0.2.1 host").is_err());
        assert!(parse_training("1 not-an-ip host").is_err());
        assert!(parse_training("1 192.0.2.1").is_err());
        assert!(parse_training("1 192.0.2.1 host extra").is_err());
    }

    #[test]
    fn flag_extraction() {
        let mut args: Vec<String> =
            ["learn", "--sim", "7", "--trace", "t.json"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_flag_value(&mut args, "--trace").unwrap().as_deref(), Some("t.json"));
        assert_eq!(take_flag_value(&mut args, "--sim").unwrap().as_deref(), Some("7"));
        assert_eq!(args, vec!["learn".to_string()]);
        assert_eq!(take_flag_value(&mut args, "--trace").unwrap(), None);

        let mut dangling: Vec<String> = ["learn", "--trace"].iter().map(|s| s.to_string()).collect();
        assert!(take_flag_value(&mut dangling, "--trace").is_err());
        let mut twice: Vec<String> =
            ["--sim", "1", "--sim", "2"].iter().map(|s| s.to_string()).collect();
        assert!(take_flag_value(&mut twice, "--sim").is_err());
    }

    #[test]
    fn sim_training_is_deterministic_and_nonempty() {
        let a = sim_training(7);
        let b = sim_training(7);
        assert!(a.len() > 0, "tiny sim must yield named interfaces");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.observations()[0].hostname, b.observations()[0].hostname);
    }
}
