//! Parser for the textual form of the dialect.
//!
//! The grammar is exactly what [`super::ast`] renders; parsing exists so
//! learned conventions can be stored and reloaded as plain text (the paper
//! publishes its regexes this way), and so tests can state expectations in
//! the familiar syntax.

use super::ast::{AltGroup, CharClass, Elem, Regex};
use std::fmt;

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(at: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { at, msg: msg.into() })
}

impl Regex {
    /// Parses the textual dialect form.
    pub fn parse(src: &str) -> Result<Regex, ParseError> {
        let b = src.as_bytes();
        let mut elems: Vec<Elem> = Vec::new();
        let mut lit = String::new();
        let mut i = 0usize;

        // Flushes the pending literal into the element list.
        fn flush(lit: &mut String, elems: &mut Vec<Elem>) {
            if !lit.is_empty() {
                elems.push(Elem::Lit(std::mem::take(lit)));
            }
        }

        while i < b.len() {
            match b[i] {
                b'^' => {
                    if i != 0 {
                        return err(i, "`^` only allowed at the start");
                    }
                    elems.push(Elem::StartAnchor);
                    i += 1;
                }
                b'$' => {
                    if i != b.len() - 1 {
                        return err(i, "`$` only allowed at the end");
                    }
                    flush(&mut lit, &mut elems);
                    elems.push(Elem::EndAnchor);
                    i += 1;
                }
                b'\\' => {
                    if i + 1 >= b.len() {
                        return err(i, "dangling escape");
                    }
                    match b[i + 1] {
                        b'd' => {
                            // `\d+` — require the `+`.
                            if i + 2 >= b.len() || b[i + 2] != b'+' {
                                return err(i, "`\\d` must be followed by `+`");
                            }
                            flush(&mut lit, &mut elems);
                            elems.push(Elem::Digits);
                            i += 3;
                        }
                        c => {
                            lit.push(c as char);
                            i += 2;
                        }
                    }
                }
                b'(' => {
                    flush(&mut lit, &mut elems);
                    if b[i..].starts_with(b"(\\d+)") {
                        elems.push(Elem::CaptureDigits);
                        i += 5;
                    } else if b[i..].starts_with(b"(?:") {
                        let (alt, next) = parse_alt(b, i)?;
                        elems.push(Elem::Alt(alt));
                        i = next;
                    } else {
                        return err(i, "expected `(\\d+)` or `(?:...)`");
                    }
                }
                b'[' => {
                    flush(&mut lit, &mut elems);
                    let (e, next) = parse_class(b, i)?;
                    elems.push(e);
                    i = next;
                }
                b'.' => {
                    if i + 1 < b.len() && b[i + 1] == b'+' {
                        flush(&mut lit, &mut elems);
                        elems.push(Elem::Any);
                        i += 2;
                    } else {
                        return err(i, "bare `.` (use `\\.` for a literal dot, `.+` for any)");
                    }
                }
                b'+' | b'*' | b'?' | b')' | b']' | b'|' => {
                    return err(i, format!("unexpected `{}`", b[i] as char));
                }
                c => {
                    lit.push(c as char);
                    i += 1;
                }
            }
        }
        flush(&mut lit, &mut elems);
        Ok(Regex::new(elems))
    }
}

/// Parses `(?:a|b|c)` with optional trailing `?`, starting at `i` (which
/// points at `(`). Returns the group and the index after it.
fn parse_alt(b: &[u8], i: usize) -> Result<(AltGroup, usize), ParseError> {
    let mut j = i + 3; // skip `(?:`
    let mut opts: Vec<String> = Vec::new();
    let mut cur = String::new();
    loop {
        if j >= b.len() {
            return err(i, "unterminated `(?:`");
        }
        match b[j] {
            b')' => {
                opts.push(std::mem::take(&mut cur));
                j += 1;
                break;
            }
            b'|' => {
                opts.push(std::mem::take(&mut cur));
                j += 1;
            }
            b'\\' => {
                if j + 1 >= b.len() {
                    return err(j, "dangling escape in alternation");
                }
                cur.push(b[j + 1] as char);
                j += 2;
            }
            b'(' | b'[' | b'+' | b'*' | b'^' | b'$' => {
                return err(j, "alternations may contain only literal strings");
            }
            c => {
                cur.push(c as char);
                j += 1;
            }
        }
    }
    let optional = j < b.len() && b[j] == b'?';
    if optional {
        j += 1;
    }
    let had_empty = opts.iter().any(|o| o.is_empty());
    match AltGroup::from_variants(opts) {
        Some(mut a) => {
            a.optional = a.optional || optional || had_empty;
            Ok((a, j))
        }
        None => err(i, "alternation with no non-empty options"),
    }
}

/// Parses `[^...]+` or `[...]+` starting at `i` (pointing at `[`).
///
/// Positive classes must be built from the dialect populations (`a-z`,
/// `\d`/`0-9`, `-`); negated classes store the excluded characters
/// verbatim (`\d` is not part of the dialect inside a negated set).
fn parse_class(b: &[u8], i: usize) -> Result<(Elem, usize), ParseError> {
    let mut j = i + 1;
    let negated = j < b.len() && b[j] == b'^';
    if negated {
        j += 1;
    }
    let mut excluded = String::new();
    let mut class = CharClass::EMPTY;
    let mut class_ok = true;
    while j < b.len() && b[j] != b']' {
        match b[j] {
            b'\\' => {
                if j + 1 >= b.len() {
                    return err(j, "dangling escape in class");
                }
                match b[j + 1] {
                    b'd' => {
                        if negated {
                            return err(j, "`\\d` not supported inside a negated class");
                        }
                        class.digit = true;
                        j += 2;
                    }
                    c => {
                        excluded.push(c as char);
                        class_ok = false;
                        j += 2;
                    }
                }
            }
            b'a' if !negated && b[j..].starts_with(b"a-z") => {
                class.lower = true;
                j += 3;
            }
            b'0' if !negated && b[j..].starts_with(b"0-9") => {
                class.digit = true;
                j += 3;
            }
            b'-' => {
                class.hyphen = true;
                excluded.push('-');
                j += 1;
            }
            c => {
                excluded.push(c as char);
                class_ok = false;
                j += 1;
            }
        }
    }
    if j >= b.len() {
        return err(i, "unterminated class");
    }
    j += 1; // skip `]`
    if j >= b.len() || b[j] != b'+' {
        return err(j, "class must be followed by `+`");
    }
    j += 1;
    if negated {
        Ok((Elem::NotIn(excluded), j))
    } else {
        if !class_ok || class.is_empty() {
            return err(i, "unsupported character class");
        }
        if class.digit && !class.lower && !class.hyphen {
            Ok((Elem::Digits, j))
        } else {
            Ok((Elem::Class(class), j))
        }
    }
}
