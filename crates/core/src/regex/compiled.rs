//! Compiled form of a dialect regex: a flat program with precomputed
//! byte-class bitmask tables and cheap pre-match rejects.
//!
//! The interpreter in [`super::matcher`] re-derives per-element facts on
//! every call: `NotIn` used to copy its excluded set into a fresh `Vec`,
//! classes re-test three range predicates per byte, and an unanchored
//! regex blindly tries every start offset. Compilation hoists all of
//! that to construction time:
//!
//! * every variable-width component (`\d+`, `[^X]+`, `[...]+`, `.+`,
//!   and the `(\d+)` capture) lowers to a 256-bit [`ByteSet`] — one
//!   shift+mask membership test per byte;
//! * the **longest mandatory literal** becomes a prefilter: a hostname
//!   that does not contain it cannot match, and is rejected by a
//!   memchr-style first-byte scan before the matcher runs;
//! * a regex ending `lit$` rejects hostnames that do not end with
//!   `lit`;
//! * an unanchored scan only tries start offsets whose first byte could
//!   begin a match (the first body element's admissible byte set).
//!
//! All four are pure rejects or skip-aheads of starts that provably
//! fail, so the compiled program is **bit-identical** to the
//! interpreter: same leftmost match, same captures, same
//! [`find_trace`](CompiledRegex::find_trace) spans. The property suite
//! in `tests/properties.rs` and the equivalence tests in
//! `tests/compiled_equiv.rs` pin this down.

use super::ast::{Elem, Regex};
use super::matcher::MatchResult;

/// A 256-bit byte membership table: one bit per byte value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ByteSet([u64; 4]);

impl ByteSet {
    pub(crate) const EMPTY: ByteSet = ByteSet([0; 4]);
    pub(crate) const FULL: ByteSet = ByteSet([u64::MAX; 4]);

    fn insert(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    fn from_pred(pred: impl Fn(u8) -> bool) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        let mut b = 0u16;
        while b <= 255 {
            if pred(b as u8) {
                s.insert(b as u8);
            }
            b += 1;
        }
        s
    }

    /// The ASCII digit set (`\d`).
    fn digits() -> ByteSet {
        ByteSet::from_pred(|b| b.is_ascii_digit())
    }

    /// True when every byte value is a member.
    fn is_full(&self) -> bool {
        self.0 == [u64::MAX; 4]
    }

    fn union(&self, other: &ByteSet) -> ByteSet {
        ByteSet([
            self.0[0] | other.0[0],
            self.0[1] | other.0[1],
            self.0[2] | other.0[2],
            self.0[3] | other.0[3],
        ])
    }

    fn is_disjoint(&self, other: &ByteSet) -> bool {
        (0..4).all(|i| self.0[i] & other.0[i] == 0)
    }

    #[inline(always)]
    pub(crate) fn contains(&self, b: u8) -> bool {
        (self.0[(b >> 6) as usize] >> (b & 63)) & 1 != 0
    }
}

/// One-byte lookahead for a greedy component: what may legally appear
/// immediately after the bytes it consumes, derived from the FIRST set
/// of the remaining ops at compile time. A trial length whose boundary
/// byte is outside the set (or that ends the hostname when `eos` is
/// false) fails the very next op without consuming anything, so the
/// backtracking loop skips it outright. The set is an
/// *over*-approximation where the follower is hard to pin down
/// (optional alternations fold in their successor, `^` defers to its
/// successor, unknowns go to [`Look::ANY`]) — skipping is therefore
/// always sound and results stay bit-identical.
#[derive(Debug, Clone, Copy)]
struct Look {
    /// Admissible boundary bytes.
    bytes: ByteSet,
    /// Whether end-of-hostname may legally follow.
    eos: bool,
}

impl Look {
    /// No constraint: try every trial length.
    const ANY: Look = Look { bytes: ByteSet::FULL, eos: true };

    fn union(&self, other: &Look) -> Look {
        Look { bytes: self.bytes.union(&other.bytes), eos: self.eos || other.eos }
    }

    /// Can a match of the remaining ops start at `h[at..]`?
    #[inline(always)]
    fn viable(&self, h: &[u8], at: usize) -> bool {
        match h.get(at) {
            Some(&b) => self.bytes.contains(b),
            None => self.eos,
        }
    }
}

/// One instruction of the flat program. Ops align one-to-one with the
/// source [`Elem`] list so trace spans keep the same indices.
#[derive(Debug, Clone)]
enum COp {
    /// `^` (only meaningful at index 0; elsewhere matches only pos 0).
    Start,
    /// `$`.
    End,
    /// A literal byte string.
    Lit(Box<[u8]>),
    /// `(?:a|b)` / `(?:a|b)?`, options in the AST's sorted order.
    Alt { opts: Box<[Box<[u8]>]>, optional: bool },
    /// `(\d+)` — greedy one-or-more over the digit set, capturing.
    Capture { set: ByteSet, look: Look, boundary_only: bool },
    /// `\d+` / `[^X]+` / `[...]+` / `.+` — greedy one-or-more over a
    /// precomputed byte set.
    Set { set: ByteSet, look: Look, boundary_only: bool },
}

impl COp {
    fn lower(e: &Elem) -> COp {
        match e {
            Elem::StartAnchor => COp::Start,
            Elem::EndAnchor => COp::End,
            Elem::Lit(l) => COp::Lit(l.as_bytes().into()),
            Elem::Alt(a) => COp::Alt {
                opts: a.opts.iter().map(|o| Box::<[u8]>::from(o.as_bytes())).collect(),
                optional: a.optional,
            },
            Elem::CaptureDigits => COp::Capture { set: ByteSet::digits(), look: Look::ANY, boundary_only: false },
            Elem::Digits => COp::Set { set: ByteSet::digits(), look: Look::ANY, boundary_only: false },
            Elem::NotIn(set) => {
                let excluded = set.as_bytes();
                COp::Set {
                    set: ByteSet::from_pred(|b| !excluded.contains(&b)),
                    look: Look::ANY,
                    boundary_only: false,
                }
            }
            Elem::Class(cls) => {
                COp::Set { set: ByteSet::from_pred(|b| cls.contains(b)), look: Look::ANY, boundary_only: false }
            }
            Elem::Any => COp::Set { set: ByteSet::FULL, look: Look::ANY, boundary_only: false },
        }
    }
}

/// FIRST sets over op suffixes, right to left: `first[i]` describes the
/// bytes (and end-of-hostname) at which a match of `ops[i..]` may
/// begin. Over-approximations only — see [`Look`].
fn first_sets(ops: &[COp]) -> Vec<Look> {
    // Past the last op the match simply ends — anything may follow.
    let mut first = vec![Look::ANY; ops.len() + 1];
    for i in (0..ops.len()).rev() {
        first[i] = match &ops[i] {
            COp::Lit(l) => match l.first() {
                Some(&b) => {
                    let mut s = ByteSet::EMPTY;
                    s.insert(b);
                    Look { bytes: s, eos: false }
                }
                None => first[i + 1],
            },
            COp::Alt { opts, optional } => {
                let mut lk = Look { bytes: ByteSet::EMPTY, eos: false };
                for o in opts.iter() {
                    match o.first() {
                        Some(&b) => lk.bytes.insert(b),
                        None => lk = lk.union(&first[i + 1]),
                    }
                }
                if *optional {
                    lk = lk.union(&first[i + 1]);
                }
                lk
            }
            COp::Capture { set, .. } | COp::Set { set, .. } => Look { bytes: *set, eos: false },
            // `$` is zero-width: the remainder must hold at
            // end-of-hostname, which `eos` over-approximates.
            COp::End => Look { bytes: ByteSet::EMPTY, eos: true },
            // `^` is zero-width and adds only a position constraint;
            // its successor's FIRST set still applies.
            COp::Start => first[i + 1],
        };
    }
    first
}

/// A [`Regex`] lowered to a flat program, ready for the hot path.
///
/// Compile once (e.g. at model load, or once per pooled candidate in
/// the learner), then call [`find`](CompiledRegex::find) /
/// [`extract`](CompiledRegex::extract) as often as needed.
#[derive(Debug, Clone)]
pub struct CompiledRegex {
    ops: Vec<COp>,
    /// True when the program must match from offset 0 (`^`).
    must_start: bool,
    /// Longest mandatory literal; a hostname not containing it cannot
    /// match.
    prefilter: Option<Box<[u8]>>,
    /// Literal immediately before a final `$`; a hostname not ending
    /// with it cannot match.
    suffix_lit: Option<Box<[u8]>>,
    /// Admissible first byte of an unanchored match; `None` means any
    /// offset must be tried (optional first element, `$`-only body, or
    /// an empty program).
    start_set: Option<ByteSet>,
}

impl CompiledRegex {
    /// Lowers `regex` into a compiled program.
    pub fn compile(regex: &Regex) -> CompiledRegex {
        let elems = regex.elems();
        let mut ops: Vec<COp> = elems.iter().map(COp::lower).collect();
        // Give every greedy component its one-byte lookahead: the FIRST
        // set of the ops after it. When the lookahead bytes are
        // disjoint from the component's own set, no interior boundary
        // can be viable (it is a run member, hence not a lookahead
        // byte) — only the full greedy run needs trying at all.
        let first = first_sets(&ops);
        for (i, op) in ops.iter_mut().enumerate() {
            if let COp::Capture { set, look, boundary_only }
            | COp::Set { set, look, boundary_only } = op
            {
                *look = first[i + 1];
                *boundary_only = look.bytes.is_disjoint(set);
            }
        }
        let must_start = matches!(elems.first(), Some(Elem::StartAnchor));

        // Longest mandatory literal anywhere in the element list. Every
        // element is consumed in sequence, so each `Lit` must appear in
        // any matching hostname. Only worth it for unanchored programs,
        // where the reject replaces a scan over every start offset; a
        // `^`-anchored program fails its single attempt at least as
        // cheaply as the prefilter scan itself.
        let prefilter = if must_start {
            None
        } else {
            elems
                .iter()
                .filter_map(|e| match e {
                    Elem::Lit(l) if !l.is_empty() => Some(l.as_bytes()),
                    _ => None,
                })
                .max_by_key(|l| l.len())
                .map(Box::<[u8]>::from)
        };

        // `lit$` tail: the match must consume `lit` through the end.
        let suffix_lit = match elems {
            [.., Elem::Lit(l), Elem::EndAnchor] if !l.is_empty() => {
                Some(Box::<[u8]>::from(l.as_bytes()))
            }
            _ => None,
        };

        // First-byte set of the first body element, when it is
        // mandatory and consuming (then a match cannot begin at a byte
        // outside the set, and cannot begin at end-of-string either).
        let body_first = if must_start { None } else { elems.first() };
        let start_set = match body_first {
            Some(Elem::Lit(l)) => {
                let mut s = ByteSet::EMPTY;
                s.insert(l.as_bytes()[0]);
                Some(s)
            }
            Some(Elem::Alt(a)) if !a.optional => {
                let mut s = ByteSet::EMPTY;
                for o in &a.opts {
                    s.insert(o.as_bytes()[0]);
                }
                Some(s)
            }
            Some(e @ (Elem::CaptureDigits
            | Elem::Digits
            | Elem::NotIn(_)
            | Elem::Class(_)
            | Elem::Any)) => match COp::lower(e) {
                COp::Capture { set, .. } | COp::Set { set, .. } if !set.is_full() => Some(set),
                _ => None,
            },
            _ => None,
        };

        CompiledRegex { ops, must_start, prefilter, suffix_lit, start_set }
    }

    /// Matches `hostname` — same leftmost-start semantics as
    /// [`Regex::find`].
    pub fn find(&self, hostname: &str) -> Option<MatchResult> {
        let mut caps = Vec::new();
        let span = self.find_impl(hostname, &mut CapSink { caps: &mut caps })?;
        Some(MatchResult { span, captures: caps })
    }

    /// Like [`Regex::find_trace`]: also reports the byte span each
    /// element consumed, aligned with the source element list.
    pub fn find_trace(&self, hostname: &str) -> Option<(MatchResult, Vec<(usize, usize)>)> {
        let mut caps = Vec::new();
        let mut trace = vec![(0usize, 0usize); self.ops.len()];
        let span =
            self.find_impl(hostname, &mut TraceSink { caps: &mut caps, trace: &mut trace })?;
        Some((MatchResult { span, captures: caps }, trace))
    }

    /// [`CompiledRegex::find_trace`] into a caller-owned span buffer —
    /// the allocation-free form the learner's class-embedding phase
    /// loops over a whole hostname set with. `trace` is resized to one
    /// span per element; returns whether the program matched (spans are
    /// only meaningful then). Captures are not reported.
    pub fn find_trace_into(&self, hostname: &str, trace: &mut Vec<(usize, usize)>) -> bool {
        trace.clear();
        trace.resize(self.ops.len(), (0, 0));
        self.find_impl(hostname, &mut SpanSink { trace }).is_some()
    }

    /// True if the program matches `hostname` at all.
    pub fn is_match(&self, hostname: &str) -> bool {
        self.find_impl(hostname, &mut FirstCapSink::default()).is_some()
    }

    /// The text of the first capture of the first match.
    pub fn extract<'h>(&self, hostname: &'h str) -> Option<&'h str> {
        self.match_capture(hostname)?.map(|(s, e)| &hostname[s..e])
    }

    /// The first capture span of the first match, allocation-free:
    /// `None` when the program does not match, `Some(None)` on a
    /// captureless match, `Some(Some((s, e)))` otherwise — exactly
    /// `find(..).map(|m| m.captures.first().copied())`. This is the
    /// learner's outcome-matrix cell primitive.
    pub fn match_capture(&self, hostname: &str) -> Option<Option<(usize, usize)>> {
        let mut sink = FirstCapSink::default();
        self.find_impl(hostname, &mut sink)?;
        Some((sink.len > 0).then_some(sink.first))
    }

    /// Every literal the program must consume on any match, in program
    /// order (duplicates possible). A hostname lacking one of them as a
    /// substring cannot match — the fact [`super::MultiMatcher`] builds
    /// its pool-wide dispatch automaton on. Unlike the single-program
    /// `prefilter`, this reports *all* mandatory literals and does so
    /// for `^`-anchored programs too: pool dispatch skips whole
    /// programs, so every literal constraint pays off.
    pub fn required_literals(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.ops.iter().filter_map(|op| match op {
            COp::Lit(l) if !l.is_empty() => Some(&l[..]),
            _ => None,
        })
    }

    /// The shared matching core, monomorphized per [`Sink`]: returns
    /// the match span, with captures and trace spans reported through
    /// the sink.
    fn find_impl<S: Sink>(&self, hostname: &str, sink: &mut S) -> Option<(usize, usize)> {
        let h = hostname.as_bytes();
        // Pure rejects: each only skips hostnames the program provably
        // cannot match, keeping results identical to the interpreter.
        if let Some(lit) = &self.prefilter {
            if !contains_lit(h, lit) {
                return None;
            }
        }
        if let Some(tail) = &self.suffix_lit {
            if h.len() < tail.len() || h[h.len() - tail.len()..] != tail[..] {
                return None;
            }
        }
        if self.must_start {
            if let Some(end) = match_ops(&self.ops[1..], 1, h, 0, sink) {
                sink.trace(0, 0, 0);
                return Some((0, end));
            }
            return None;
        }
        if let Some(set) = &self.start_set {
            // The first element consumes a byte from `set`, so only
            // such offsets (and never end-of-string) can start a match.
            for start in 0..h.len() {
                if !set.contains(h[start]) {
                    continue;
                }
                sink.truncate(0);
                if let Some(end) = match_ops(&self.ops, 0, h, start, sink) {
                    return Some((start, end));
                }
            }
            return None;
        }
        for start in 0..=h.len() {
            sink.truncate(0);
            if let Some(end) = match_ops(&self.ops, 0, h, start, sink) {
                return Some((start, end));
            }
        }
        None
    }
}

/// Capture/trace reporting for one [`CompiledRegex::find_impl`] run.
///
/// Captures never influence control flow, and each method is a no-op in
/// the sinks that do not need its data — so every instantiation walks
/// the exact same backtracking path and the results stay bit-identical
/// across `find`, `find_trace`, `is_match`, `extract`,
/// `match_capture`, and `find_trace_into`, while the hot paths pay for
/// nothing they do not use (no allocation, no `Option` threading).
trait Sink {
    /// Whether this sink consumes `trace` calls. When `false` the
    /// matcher skips the success-path replay that reconstructs spans
    /// for deterministically-consumed ops (see `trace_prefix`).
    const TRACES: bool = false;
    /// Records the span op `idx` consumed (trace sinks only).
    #[inline(always)]
    fn trace(&mut self, _idx: usize, _s: usize, _e: usize) {}
    /// Number of captures currently recorded.
    fn mark(&self) -> usize;
    /// Records a capture (entering a `Capture` op's trial).
    fn push_cap(&mut self, s: usize, e: usize);
    /// Unwinds the most recent capture (the trial failed).
    fn pop_cap(&mut self);
    /// Unwinds to a previous mark (a `Set` trial or a fresh start).
    fn truncate(&mut self, mark: usize);
}

/// Full capture list into a `Vec` — the [`CompiledRegex::find`] sink.
struct CapSink<'a> {
    caps: &'a mut Vec<(usize, usize)>,
}

impl Sink for CapSink<'_> {
    fn mark(&self) -> usize {
        self.caps.len()
    }
    fn push_cap(&mut self, s: usize, e: usize) {
        self.caps.push((s, e));
    }
    fn pop_cap(&mut self) {
        self.caps.pop();
    }
    fn truncate(&mut self, mark: usize) {
        self.caps.truncate(mark);
    }
}

/// Captures plus per-op spans — the [`CompiledRegex::find_trace`] sink.
struct TraceSink<'a> {
    caps: &'a mut Vec<(usize, usize)>,
    trace: &'a mut [(usize, usize)],
}

impl Sink for TraceSink<'_> {
    const TRACES: bool = true;
    fn trace(&mut self, idx: usize, s: usize, e: usize) {
        self.trace[idx] = (s, e);
    }
    fn mark(&self) -> usize {
        self.caps.len()
    }
    fn push_cap(&mut self, s: usize, e: usize) {
        self.caps.push((s, e));
    }
    fn pop_cap(&mut self) {
        self.caps.pop();
    }
    fn truncate(&mut self, mark: usize) {
        self.caps.truncate(mark);
    }
}

/// Per-op spans only — the [`CompiledRegex::find_trace_into`] sink.
struct SpanSink<'a> {
    trace: &'a mut [(usize, usize)],
}

impl Sink for SpanSink<'_> {
    const TRACES: bool = true;
    fn trace(&mut self, idx: usize, s: usize, e: usize) {
        self.trace[idx] = (s, e);
    }
    fn mark(&self) -> usize {
        0
    }
    fn push_cap(&mut self, _s: usize, _e: usize) {}
    fn pop_cap(&mut self) {}
    fn truncate(&mut self, _mark: usize) {}
}

/// First capture only, O(1) state — the [`CompiledRegex::is_match`] /
/// [`CompiledRegex::match_capture`] sink. `first` tracks whatever
/// capture is currently oldest: it is rewritten whenever the count
/// returns to zero and a new capture arrives, so on success it is
/// exactly `captures.first()`.
#[derive(Default)]
struct FirstCapSink {
    len: usize,
    first: (usize, usize),
}

impl Sink for FirstCapSink {
    fn mark(&self) -> usize {
        self.len
    }
    fn push_cap(&mut self, s: usize, e: usize) {
        if self.len == 0 {
            self.first = (s, e);
        }
        self.len += 1;
    }
    fn pop_cap(&mut self) {
        self.len -= 1;
    }
    fn truncate(&mut self, mark: usize) {
        self.len = mark;
    }
}

impl Regex {
    /// Lowers this regex into its compiled form (see [`CompiledRegex`]).
    pub fn compiled(&self) -> CompiledRegex {
        CompiledRegex::compile(self)
    }
}

/// Substring search specialised for short needles: scan for the first
/// byte (the iterator `position` vectorises), then verify the rest.
fn contains_lit(h: &[u8], lit: &[u8]) -> bool {
    let n = lit.len();
    if n == 0 {
        return true;
    }
    if n > h.len() {
        return false;
    }
    let first = lit[0];
    let last_start = h.len() - n;
    let mut base = 0usize;
    while base <= last_start {
        match h[base..=last_start].iter().position(|&b| b == first) {
            Some(off) => {
                let i = base + off;
                if h[i..i + n] == lit[..] {
                    return true;
                }
                base = i + 1;
            }
            None => return false,
        }
    }
    false
}

/// Length of the run of bytes from `set` starting at `pos`.
///
/// Word-at-a-time: 8 bytes per iteration via an unaligned `u64` load,
/// each byte tested against the 4-word bitmap into a per-chunk miss
/// mask, `trailing_zeros` locating the first non-member; the sub-8-byte
/// remainder falls back to the scalar scan. The membership test itself
/// is branch-free, so the only branch per chunk is "any miss at all".
#[inline]
fn run_len(h: &[u8], pos: usize, set: &ByteSet) -> usize {
    let tail = &h[pos..];
    let mut n = 0usize;
    let mut chunks = tail.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        let mut miss = 0u8;
        for i in 0..8 {
            let b = (word >> (8 * i)) as u8;
            miss |= u8::from(!set.contains(b)) << i;
        }
        if miss != 0 {
            return n + miss.trailing_zeros() as usize;
        }
        n += 8;
    }
    n + chunks.remainder().iter().take_while(|&&c| set.contains(c)).count()
}

/// Re-walks the deterministic prefix `ops[..n]` from `pos`, emitting
/// the trace span each op consumed. Every op in the prefix admits
/// exactly one trial (that is what made it deterministic), so the
/// replay recomputes the identical spans the forward pass consumed.
/// Only called on the success path of trace-bearing sinks.
fn trace_prefix<S: Sink>(ops: &[COp], idx: usize, h: &[u8], mut pos: usize, n: usize, sink: &mut S) {
    for (j, op) in ops[..n].iter().enumerate() {
        let end = match op {
            COp::Start | COp::End => pos,
            COp::Lit(l) => pos + l.len(),
            COp::Capture { set, .. } | COp::Set { set, .. } => pos + run_len(h, pos, set),
            COp::Alt { .. } => unreachable!("Alt ops never join the deterministic prefix"),
        };
        sink.trace(idx + j, pos, end);
        pos = end;
    }
}

/// Mirrors `matcher::match_seq` over the flat program: a walk with
/// greedy one-or-more components and backtracking on failure. `idx`
/// addresses `ops[0]` within the full program for trace writes.
/// Monomorphized per [`Sink`]; captures and traces never steer the
/// walk, so every instantiation follows the identical path.
///
/// Ops that admit exactly one trial — `Start`, `End`, `Lit`, and
/// greedy components whose FIRST-set lookahead excludes every interior
/// boundary (`boundary_only`) — advance an iterative cursor with no
/// recursion. Only genuinely branching ops (`Alt`, components that
/// must try several lengths) open a stack frame, so the common mostly-
/// literal program runs as a flat loop. On failure the sink is rolled
/// back to its entry mark, keeping the caller-visible contract of the
/// fully recursive form.
fn match_ops<S: Sink>(ops: &[COp], idx: usize, h: &[u8], pos: usize, sink: &mut S) -> Option<usize> {
    let mark = sink.mark();
    let mut i = 0usize;
    let mut p = pos;
    // Deterministic prefix: single-trial ops advance the cursor.
    let (first, rest) = loop {
        let Some(op) = ops.get(i) else {
            if S::TRACES {
                trace_prefix(ops, idx, h, pos, i, sink);
            }
            return Some(p);
        };
        match op {
            COp::Start => {
                if p != 0 {
                    sink.truncate(mark);
                    return None;
                }
            }
            COp::End => {
                if p != h.len() {
                    sink.truncate(mark);
                    return None;
                }
            }
            COp::Lit(l) => {
                if h.len() - p < l.len() || h[p..p + l.len()] != l[..] {
                    sink.truncate(mark);
                    return None;
                }
                p += l.len();
            }
            COp::Capture { set, look, boundary_only: true } => {
                let max = run_len(h, p, set);
                if max == 0 || !look.viable(h, p + max) {
                    sink.truncate(mark);
                    return None;
                }
                sink.push_cap(p, p + max);
                p += max;
            }
            COp::Set { set, look, boundary_only: true } => {
                let max = run_len(h, p, set);
                if max == 0 || !look.viable(h, p + max) {
                    sink.truncate(mark);
                    return None;
                }
                p += max;
            }
            _ => break (op, &ops[i + 1..]),
        }
        i += 1;
    };
    // Branching op at `ops[i]`: recursive trials, greediest first.
    let ridx = idx + i + 1;
    // Records the branching op's span plus the deterministic prefix's
    // spans on success, and propagates the end.
    macro_rules! ok {
        ($consumed_end:expr, $end:expr) => {{
            if S::TRACES {
                sink.trace(idx + i, p, $consumed_end);
                trace_prefix(ops, idx, h, pos, i, sink);
            }
            return Some($end);
        }};
    }
    match first {
        COp::Alt { opts, optional } => {
            for opt in opts.iter() {
                if h.len() - p >= opt.len() && h[p..p + opt.len()] == opt[..] {
                    let np = p + opt.len();
                    if let Some(end) = match_ops(rest, ridx, h, np, sink) {
                        ok!(np, end);
                    }
                }
            }
            if *optional {
                if let Some(end) = match_ops(rest, ridx, h, p, sink) {
                    ok!(p, end);
                }
            }
        }
        COp::Capture { set, look, .. } => {
            let max = run_len(h, p, set);
            for take in (1..=max).rev() {
                if !look.viable(h, p + take) {
                    continue;
                }
                sink.push_cap(p, p + take);
                if let Some(end) = match_ops(rest, ridx, h, p + take, sink) {
                    ok!(p + take, end);
                }
                sink.pop_cap();
            }
        }
        COp::Set { set, look, .. } => {
            let max = run_len(h, p, set);
            for take in (1..=max).rev() {
                if !look.viable(h, p + take) {
                    continue;
                }
                let trial = sink.mark();
                if let Some(end) = match_ops(rest, ridx, h, p + take, sink) {
                    ok!(p + take, end);
                }
                sink.truncate(trial);
            }
        }
        COp::Start | COp::End | COp::Lit(_) => {
            unreachable!("single-trial ops are consumed by the deterministic prefix")
        }
    }
    sink.truncate(mark);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    /// Interpreter and compiled program agree on find, trace, extract.
    // The interpreter (`find_interpreted`) is the oracle here: `Regex::find`
    // itself now runs the compiled program, so comparing against it would
    // be tautological.
    fn assert_agrees(r: &Regex, host: &str) {
        let c = CompiledRegex::compile(r);
        assert_eq!(c.find(host), r.find_interpreted(host), "{r} on {host:?}");
        assert_eq!(c.find_trace(host), r.find_trace_interpreted(host), "{r} on {host:?} (trace)");
        let i_extract =
            r.find_interpreted(host).and_then(|m| m.captures.first().map(|&(s, e)| &host[s..e]));
        assert_eq!(c.extract(host), i_extract, "{r} on {host:?} (extract)");
        assert_eq!(
            c.is_match(host),
            r.find_interpreted(host).is_some(),
            "{r} on {host:?} (is_match)"
        );
        // The allocation-free sinks agree with the allocating ones.
        assert_eq!(
            c.match_capture(host),
            c.find(host).map(|m| m.captures.first().copied()),
            "{r} on {host:?} (match_capture)"
        );
        let mut spans = Vec::new();
        let matched = c.find_trace_into(host, &mut spans);
        match c.find_trace(host) {
            Some((_, trace)) => {
                assert!(matched, "{r} on {host:?} (find_trace_into missed)");
                assert_eq!(spans, trace, "{r} on {host:?} (find_trace_into spans)");
            }
            None => assert!(!matched, "{r} on {host:?} (find_trace_into phantom)"),
        }
    }

    #[test]
    fn byteset_membership() {
        let digits = ByteSet::digits();
        for b in 0..=255u8 {
            assert_eq!(digits.contains(b), b.is_ascii_digit(), "byte {b}");
        }
        assert!(ByteSet::from_pred(|_| true).is_full());
        assert!(!ByteSet::EMPTY.is_full());
    }

    #[test]
    fn paper_regexes_agree_on_corpus() {
        let regexes = [
            r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$",
            r"^(\d+)-.+\.equinix\.com$",
            r"as(\d+)\.nts\.ch$",
            r"^(\d+)\.[a-z]+\d+\.example\.com$",
            r"^(\d+)-[^-]+-[^-]+\.equinix\.com$",
            r"[a-z\d]+\.as(\d+)\.example\.com$",
        ];
        let hosts = [
            "p714.sgw.equinix.com",
            "s24115.tyo.equinix.com",
            "24482-fr5-ix.equinix.com",
            "ge0-2.01.p.ost.ch.as15576.nts.ch",
            "netflix.zh2.corp.eu.equinix.com",
            "605.pop7.example.com",
            "abc1.as100.example.com",
            "",
            "equinix.com",
            "x.y",
        ];
        for r in &regexes {
            let r = rx(r);
            for h in &hosts {
                assert_agrees(&r, h);
            }
        }
    }

    #[test]
    fn prefilter_rejects_without_running_the_program() {
        let c = CompiledRegex::compile(&rx(r"as(\d+)\.nts\.ch$"));
        assert_eq!(c.prefilter.as_deref(), Some(&b".nts.ch"[..]));
        assert!(c.find("core1.example.org").is_none());
        assert!(c.find("as100.nts.ch").is_some());
    }

    #[test]
    fn suffix_reject_respects_end_anchor() {
        let c = CompiledRegex::compile(&rx(r"^(\d+)\.x\.com$"));
        assert_eq!(c.suffix_lit.as_deref(), Some(&b".x.com"[..]));
        assert!(c.find("714.x.com").is_some());
        assert!(c.find("714.x.com.evil.net").is_none());
    }

    #[test]
    fn start_set_prunes_only_impossible_offsets() {
        // `as(\d+)` can only start at an `a`.
        let r = rx(r"as(\d+)");
        let c = CompiledRegex::compile(&r);
        assert!(c.start_set.is_some());
        for host in ["xxas123yy", "as1", "bs2", "aas5", "a", ""] {
            assert_agrees(&r, host);
        }
    }

    #[test]
    fn optional_first_element_scans_every_offset() {
        // An optional alternation first: zero-width at any offset, so
        // no start pruning is sound.
        let r = rx(r"(?:p|s)?(\d+)");
        let c = CompiledRegex::compile(&r);
        assert!(c.start_set.is_none() || !matches!(r.elems()[0], Elem::Alt(_)));
        for host in ["p714", "714", "x714", "sp12", ""] {
            assert_agrees(&r, host);
        }
    }

    #[test]
    fn empty_regex_matches_empty_at_zero() {
        let r = Regex::new(vec![]);
        assert_agrees(&r, "");
        assert_agrees(&r, "abc");
    }

    #[test]
    fn contains_lit_cases() {
        assert!(contains_lit(b"abcdef", b"cde"));
        assert!(contains_lit(b"abcdef", b"abcdef"));
        assert!(!contains_lit(b"abcdef", b"abcdefg"));
        assert!(!contains_lit(b"abcdef", b"xyz"));
        assert!(contains_lit(b"aab", b"ab"));
        assert!(contains_lit(b"", b""));
        assert!(contains_lit(b"x", b""));
    }

    #[test]
    fn run_len_word_at_a_time_equals_scalar() {
        let digits = ByteSet::digits();
        // Runs crossing every chunk boundary shape: 0..=20 leading
        // digits, then a non-member, at every starting offset.
        for lead in 0..=20usize {
            let mut h = vec![b'x'; 3];
            h.extend(std::iter::repeat(b'7').take(lead));
            h.push(b'.');
            h.extend_from_slice(b"123456789");
            for pos in 0..h.len() {
                let scalar = h[pos..].iter().take_while(|&&c| digits.contains(c)).count();
                assert_eq!(run_len(&h, pos, &digits), scalar, "lead={lead} pos={pos}");
            }
        }
        // Run extending to end-of-string (no terminator in the tail).
        let all = b"12345678901234567";
        assert_eq!(run_len(all, 0, &digits), all.len());
        assert_eq!(run_len(b"", 0, &digits), 0);
    }

    #[test]
    fn required_literals_reported_for_anchored_and_unanchored() {
        let c = CompiledRegex::compile(&rx(r"^as(\d+)-ix\.example\.net$"));
        let lits: Vec<&[u8]> = c.required_literals().collect();
        assert_eq!(lits, vec![&b"as"[..], &b"-ix.example.net"[..]]);
        // Alternations and classes contribute no required literal.
        let c = CompiledRegex::compile(&rx(r"(?:p|s)?(\d+)\.[a-z]+"));
        let lits: Vec<&[u8]> = c.required_literals().collect();
        assert_eq!(lits, vec![&b"."[..]]);
    }

    #[test]
    fn backtracking_and_captures_identical() {
        // Digit run split across capture and literal backtracks the
        // same way in both engines.
        for r in [r"(\d+)1\.x$", r"^[^\.]+(\d+)$", r"(\d+)(\d+)x"] {
            let r = rx(r);
            for host in ["12341.x", "abc123", "1231x", "11x", "1x"] {
                assert_agrees(&r, host);
            }
        }
    }
}
