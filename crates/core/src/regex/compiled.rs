//! Compiled form of a dialect regex: a flat program with precomputed
//! byte-class bitmask tables and cheap pre-match rejects.
//!
//! The interpreter in [`super::matcher`] re-derives per-element facts on
//! every call: `NotIn` used to copy its excluded set into a fresh `Vec`,
//! classes re-test three range predicates per byte, and an unanchored
//! regex blindly tries every start offset. Compilation hoists all of
//! that to construction time:
//!
//! * every variable-width component (`\d+`, `[^X]+`, `[...]+`, `.+`,
//!   and the `(\d+)` capture) lowers to a 256-bit [`ByteSet`] — one
//!   shift+mask membership test per byte;
//! * the **longest mandatory literal** becomes a prefilter: a hostname
//!   that does not contain it cannot match, and is rejected by a
//!   memchr-style first-byte scan before the matcher runs;
//! * a regex ending `lit$` rejects hostnames that do not end with
//!   `lit`;
//! * an unanchored scan only tries start offsets whose first byte could
//!   begin a match (the first body element's admissible byte set).
//!
//! All four are pure rejects or skip-aheads of starts that provably
//! fail, so the compiled program is **bit-identical** to the
//! interpreter: same leftmost match, same captures, same
//! [`find_trace`](CompiledRegex::find_trace) spans. The property suite
//! in `tests/properties.rs` and the equivalence tests in
//! `tests/compiled_equiv.rs` pin this down.

use super::ast::{Elem, Regex};
use super::matcher::MatchResult;

/// A 256-bit byte membership table: one bit per byte value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ByteSet([u64; 4]);

impl ByteSet {
    pub(crate) const EMPTY: ByteSet = ByteSet([0; 4]);

    fn insert(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    fn from_pred(pred: impl Fn(u8) -> bool) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        let mut b = 0u16;
        while b <= 255 {
            if pred(b as u8) {
                s.insert(b as u8);
            }
            b += 1;
        }
        s
    }

    /// The ASCII digit set (`\d`).
    fn digits() -> ByteSet {
        ByteSet::from_pred(|b| b.is_ascii_digit())
    }

    /// True when every byte value is a member.
    fn is_full(&self) -> bool {
        self.0 == [u64::MAX; 4]
    }

    #[inline(always)]
    pub(crate) fn contains(&self, b: u8) -> bool {
        (self.0[(b >> 6) as usize] >> (b & 63)) & 1 != 0
    }
}

/// One instruction of the flat program. Ops align one-to-one with the
/// source [`Elem`] list so trace spans keep the same indices.
#[derive(Debug, Clone)]
enum COp {
    /// `^` (only meaningful at index 0; elsewhere matches only pos 0).
    Start,
    /// `$`.
    End,
    /// A literal byte string.
    Lit(Box<[u8]>),
    /// `(?:a|b)` / `(?:a|b)?`, options in the AST's sorted order.
    Alt { opts: Box<[Box<[u8]>]>, optional: bool },
    /// `(\d+)` — greedy one-or-more over the digit set, capturing.
    Capture(ByteSet),
    /// `\d+` / `[^X]+` / `[...]+` / `.+` — greedy one-or-more over a
    /// precomputed byte set.
    Set(ByteSet),
}

impl COp {
    fn lower(e: &Elem) -> COp {
        match e {
            Elem::StartAnchor => COp::Start,
            Elem::EndAnchor => COp::End,
            Elem::Lit(l) => COp::Lit(l.as_bytes().into()),
            Elem::Alt(a) => COp::Alt {
                opts: a.opts.iter().map(|o| Box::<[u8]>::from(o.as_bytes())).collect(),
                optional: a.optional,
            },
            Elem::CaptureDigits => COp::Capture(ByteSet::digits()),
            Elem::Digits => COp::Set(ByteSet::digits()),
            Elem::NotIn(set) => {
                let excluded = set.as_bytes();
                COp::Set(ByteSet::from_pred(|b| !excluded.contains(&b)))
            }
            Elem::Class(cls) => COp::Set(ByteSet::from_pred(|b| cls.contains(b))),
            Elem::Any => COp::Set(ByteSet::from_pred(|_| true)),
        }
    }
}

/// A [`Regex`] lowered to a flat program, ready for the hot path.
///
/// Compile once (e.g. at model load, or once per pooled candidate in
/// the learner), then call [`find`](CompiledRegex::find) /
/// [`extract`](CompiledRegex::extract) as often as needed.
#[derive(Debug, Clone)]
pub struct CompiledRegex {
    ops: Vec<COp>,
    /// True when the program must match from offset 0 (`^`).
    must_start: bool,
    /// Longest mandatory literal; a hostname not containing it cannot
    /// match.
    prefilter: Option<Box<[u8]>>,
    /// Literal immediately before a final `$`; a hostname not ending
    /// with it cannot match.
    suffix_lit: Option<Box<[u8]>>,
    /// Admissible first byte of an unanchored match; `None` means any
    /// offset must be tried (optional first element, `$`-only body, or
    /// an empty program).
    start_set: Option<ByteSet>,
}

impl CompiledRegex {
    /// Lowers `regex` into a compiled program.
    pub fn compile(regex: &Regex) -> CompiledRegex {
        let elems = regex.elems();
        let ops: Vec<COp> = elems.iter().map(COp::lower).collect();
        let must_start = matches!(elems.first(), Some(Elem::StartAnchor));

        // Longest mandatory literal anywhere in the element list. Every
        // element is consumed in sequence, so each `Lit` must appear in
        // any matching hostname. Only worth it for unanchored programs,
        // where the reject replaces a scan over every start offset; a
        // `^`-anchored program fails its single attempt at least as
        // cheaply as the prefilter scan itself.
        let prefilter = if must_start {
            None
        } else {
            elems
                .iter()
                .filter_map(|e| match e {
                    Elem::Lit(l) if !l.is_empty() => Some(l.as_bytes()),
                    _ => None,
                })
                .max_by_key(|l| l.len())
                .map(Box::<[u8]>::from)
        };

        // `lit$` tail: the match must consume `lit` through the end.
        let suffix_lit = match elems {
            [.., Elem::Lit(l), Elem::EndAnchor] if !l.is_empty() => {
                Some(Box::<[u8]>::from(l.as_bytes()))
            }
            _ => None,
        };

        // First-byte set of the first body element, when it is
        // mandatory and consuming (then a match cannot begin at a byte
        // outside the set, and cannot begin at end-of-string either).
        let body_first = if must_start { None } else { elems.first() };
        let start_set = match body_first {
            Some(Elem::Lit(l)) => {
                let mut s = ByteSet::EMPTY;
                s.insert(l.as_bytes()[0]);
                Some(s)
            }
            Some(Elem::Alt(a)) if !a.optional => {
                let mut s = ByteSet::EMPTY;
                for o in &a.opts {
                    s.insert(o.as_bytes()[0]);
                }
                Some(s)
            }
            Some(e @ (Elem::CaptureDigits
            | Elem::Digits
            | Elem::NotIn(_)
            | Elem::Class(_)
            | Elem::Any)) => match COp::lower(e) {
                COp::Capture(s) | COp::Set(s) if !s.is_full() => Some(s),
                _ => None,
            },
            _ => None,
        };

        CompiledRegex { ops, must_start, prefilter, suffix_lit, start_set }
    }

    /// Matches `hostname` — same leftmost-start semantics as
    /// [`Regex::find`].
    pub fn find(&self, hostname: &str) -> Option<MatchResult> {
        self.find_impl(hostname, None)
    }

    /// Like [`Regex::find_trace`]: also reports the byte span each
    /// element consumed, aligned with the source element list.
    pub fn find_trace(&self, hostname: &str) -> Option<(MatchResult, Vec<(usize, usize)>)> {
        let mut trace = vec![(0usize, 0usize); self.ops.len()];
        let m = self.find_impl(hostname, Some(&mut trace))?;
        Some((m, trace))
    }

    /// True if the program matches `hostname` at all.
    pub fn is_match(&self, hostname: &str) -> bool {
        self.find(hostname).is_some()
    }

    /// The text of the first capture of the first match.
    pub fn extract<'h>(&self, hostname: &'h str) -> Option<&'h str> {
        let m = self.find(hostname)?;
        m.captures.first().map(|&(s, e)| &hostname[s..e])
    }

    fn find_impl(
        &self,
        hostname: &str,
        mut trace: Option<&mut [(usize, usize)]>,
    ) -> Option<MatchResult> {
        let h = hostname.as_bytes();
        // Pure rejects: each only skips hostnames the program provably
        // cannot match, keeping results identical to the interpreter.
        if let Some(lit) = &self.prefilter {
            if !contains_lit(h, lit) {
                return None;
            }
        }
        if let Some(tail) = &self.suffix_lit {
            if h.len() < tail.len() || h[h.len() - tail.len()..] != tail[..] {
                return None;
            }
        }
        let mut caps: Vec<(usize, usize)> = Vec::new();
        if self.must_start {
            let tr = trace.as_deref_mut();
            if let Some(end) = match_ops(&self.ops[1..], 1, h, 0, &mut caps, tr) {
                if let Some(t) = trace.as_deref_mut() {
                    t[0] = (0, 0);
                }
                return Some(MatchResult { span: (0, end), captures: caps });
            }
            return None;
        }
        if let Some(set) = &self.start_set {
            // The first element consumes a byte from `set`, so only
            // such offsets (and never end-of-string) can start a match.
            for start in 0..h.len() {
                if !set.contains(h[start]) {
                    continue;
                }
                caps.clear();
                let tr = trace.as_deref_mut();
                if let Some(end) = match_ops(&self.ops, 0, h, start, &mut caps, tr) {
                    return Some(MatchResult { span: (start, end), captures: caps });
                }
            }
            return None;
        }
        for start in 0..=h.len() {
            caps.clear();
            let tr = trace.as_deref_mut();
            if let Some(end) = match_ops(&self.ops, 0, h, start, &mut caps, tr) {
                return Some(MatchResult { span: (start, end), captures: caps });
            }
        }
        None
    }
}

impl Regex {
    /// Lowers this regex into its compiled form (see [`CompiledRegex`]).
    pub fn compiled(&self) -> CompiledRegex {
        CompiledRegex::compile(self)
    }
}

/// Substring search specialised for short needles: scan for the first
/// byte (the iterator `position` vectorises), then verify the rest.
fn contains_lit(h: &[u8], lit: &[u8]) -> bool {
    let n = lit.len();
    if n == 0 {
        return true;
    }
    if n > h.len() {
        return false;
    }
    let first = lit[0];
    let last_start = h.len() - n;
    let mut base = 0usize;
    while base <= last_start {
        match h[base..=last_start].iter().position(|&b| b == first) {
            Some(off) => {
                let i = base + off;
                if h[i..i + n] == lit[..] {
                    return true;
                }
                base = i + 1;
            }
            None => return false,
        }
    }
    false
}

/// Length of the run of bytes from `set` starting at `pos`.
#[inline]
fn run_len(h: &[u8], pos: usize, set: &ByteSet) -> usize {
    h[pos..].iter().take_while(|&&c| set.contains(c)).count()
}

/// Mirrors `matcher::match_seq` over the flat program: a walk with
/// greedy one-or-more components and backtracking on failure. `idx`
/// addresses `ops[0]` within the full program for trace writes.
fn match_ops(
    ops: &[COp],
    idx: usize,
    h: &[u8],
    pos: usize,
    caps: &mut Vec<(usize, usize)>,
    mut trace: Option<&mut [(usize, usize)]>,
) -> Option<usize> {
    let Some((first, rest)) = ops.split_first() else {
        return Some(pos);
    };
    // Records this op's span on success and propagates the end.
    macro_rules! ok {
        ($consumed_end:expr, $end:expr) => {{
            if let Some(t) = trace.as_deref_mut() {
                t[idx] = (pos, $consumed_end);
            }
            return Some($end);
        }};
    }
    match first {
        COp::Start => {
            if pos == 0 {
                if let Some(end) = match_ops(rest, idx + 1, h, pos, caps, trace.as_deref_mut()) {
                    ok!(pos, end);
                }
            }
            None
        }
        COp::End => {
            if pos == h.len() {
                if let Some(end) = match_ops(rest, idx + 1, h, pos, caps, trace.as_deref_mut()) {
                    ok!(pos, end);
                }
            }
            None
        }
        COp::Lit(l) => {
            if h.len() - pos >= l.len() && h[pos..pos + l.len()] == l[..] {
                let np = pos + l.len();
                if let Some(end) = match_ops(rest, idx + 1, h, np, caps, trace.as_deref_mut()) {
                    ok!(np, end);
                }
            }
            None
        }
        COp::Alt { opts, optional } => {
            for opt in opts.iter() {
                if h.len() - pos >= opt.len() && h[pos..pos + opt.len()] == opt[..] {
                    let np = pos + opt.len();
                    if let Some(end) = match_ops(rest, idx + 1, h, np, caps, trace.as_deref_mut())
                    {
                        ok!(np, end);
                    }
                }
            }
            if *optional {
                if let Some(end) = match_ops(rest, idx + 1, h, pos, caps, trace.as_deref_mut()) {
                    ok!(pos, end);
                }
            }
            None
        }
        COp::Capture(set) => {
            let max = run_len(h, pos, set);
            for take in (1..=max).rev() {
                caps.push((pos, pos + take));
                if let Some(end) =
                    match_ops(rest, idx + 1, h, pos + take, caps, trace.as_deref_mut())
                {
                    ok!(pos + take, end);
                }
                caps.pop();
            }
            None
        }
        COp::Set(set) => {
            let max = run_len(h, pos, set);
            for take in (1..=max).rev() {
                let mark = caps.len();
                if let Some(end) =
                    match_ops(rest, idx + 1, h, pos + take, caps, trace.as_deref_mut())
                {
                    if let Some(t) = trace.as_deref_mut() {
                        t[idx] = (pos, pos + take);
                    }
                    return Some(end);
                }
                caps.truncate(mark);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    /// Interpreter and compiled program agree on find, trace, extract.
    // The interpreter (`find_interpreted`) is the oracle here: `Regex::find`
    // itself now runs the compiled program, so comparing against it would
    // be tautological.
    fn assert_agrees(r: &Regex, host: &str) {
        let c = CompiledRegex::compile(r);
        assert_eq!(c.find(host), r.find_interpreted(host), "{r} on {host:?}");
        assert_eq!(c.find_trace(host), r.find_trace_interpreted(host), "{r} on {host:?} (trace)");
        let i_extract =
            r.find_interpreted(host).and_then(|m| m.captures.first().map(|&(s, e)| &host[s..e]));
        assert_eq!(c.extract(host), i_extract, "{r} on {host:?} (extract)");
        assert_eq!(
            c.is_match(host),
            r.find_interpreted(host).is_some(),
            "{r} on {host:?} (is_match)"
        );
    }

    #[test]
    fn byteset_membership() {
        let digits = ByteSet::digits();
        for b in 0..=255u8 {
            assert_eq!(digits.contains(b), b.is_ascii_digit(), "byte {b}");
        }
        assert!(ByteSet::from_pred(|_| true).is_full());
        assert!(!ByteSet::EMPTY.is_full());
    }

    #[test]
    fn paper_regexes_agree_on_corpus() {
        let regexes = [
            r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$",
            r"^(\d+)-.+\.equinix\.com$",
            r"as(\d+)\.nts\.ch$",
            r"^(\d+)\.[a-z]+\d+\.example\.com$",
            r"^(\d+)-[^-]+-[^-]+\.equinix\.com$",
            r"[a-z\d]+\.as(\d+)\.example\.com$",
        ];
        let hosts = [
            "p714.sgw.equinix.com",
            "s24115.tyo.equinix.com",
            "24482-fr5-ix.equinix.com",
            "ge0-2.01.p.ost.ch.as15576.nts.ch",
            "netflix.zh2.corp.eu.equinix.com",
            "605.pop7.example.com",
            "abc1.as100.example.com",
            "",
            "equinix.com",
            "x.y",
        ];
        for r in &regexes {
            let r = rx(r);
            for h in &hosts {
                assert_agrees(&r, h);
            }
        }
    }

    #[test]
    fn prefilter_rejects_without_running_the_program() {
        let c = CompiledRegex::compile(&rx(r"as(\d+)\.nts\.ch$"));
        assert_eq!(c.prefilter.as_deref(), Some(&b".nts.ch"[..]));
        assert!(c.find("core1.example.org").is_none());
        assert!(c.find("as100.nts.ch").is_some());
    }

    #[test]
    fn suffix_reject_respects_end_anchor() {
        let c = CompiledRegex::compile(&rx(r"^(\d+)\.x\.com$"));
        assert_eq!(c.suffix_lit.as_deref(), Some(&b".x.com"[..]));
        assert!(c.find("714.x.com").is_some());
        assert!(c.find("714.x.com.evil.net").is_none());
    }

    #[test]
    fn start_set_prunes_only_impossible_offsets() {
        // `as(\d+)` can only start at an `a`.
        let r = rx(r"as(\d+)");
        let c = CompiledRegex::compile(&r);
        assert!(c.start_set.is_some());
        for host in ["xxas123yy", "as1", "bs2", "aas5", "a", ""] {
            assert_agrees(&r, host);
        }
    }

    #[test]
    fn optional_first_element_scans_every_offset() {
        // An optional alternation first: zero-width at any offset, so
        // no start pruning is sound.
        let r = rx(r"(?:p|s)?(\d+)");
        let c = CompiledRegex::compile(&r);
        assert!(c.start_set.is_none() || !matches!(r.elems()[0], Elem::Alt(_)));
        for host in ["p714", "714", "x714", "sp12", ""] {
            assert_agrees(&r, host);
        }
    }

    #[test]
    fn empty_regex_matches_empty_at_zero() {
        let r = Regex::new(vec![]);
        assert_agrees(&r, "");
        assert_agrees(&r, "abc");
    }

    #[test]
    fn contains_lit_cases() {
        assert!(contains_lit(b"abcdef", b"cde"));
        assert!(contains_lit(b"abcdef", b"abcdef"));
        assert!(!contains_lit(b"abcdef", b"abcdefg"));
        assert!(!contains_lit(b"abcdef", b"xyz"));
        assert!(contains_lit(b"aab", b"ab"));
        assert!(contains_lit(b"", b""));
        assert!(contains_lit(b"x", b""));
    }

    #[test]
    fn backtracking_and_captures_identical() {
        // Digit run split across capture and literal backtracks the
        // same way in both engines.
        for r in [r"(\d+)1\.x$", r"^[^\.]+(\d+)$", r"(\d+)(\d+)x"] {
            let r = rx(r);
            for host in ["12341.x", "abc123", "1231x", "11x", "1x"] {
                assert_agrees(&r, host);
            }
        }
    }
}
