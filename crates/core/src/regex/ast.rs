//! Element AST for the Hoiho regex dialect, plus rendering to the textual
//! form. Parsing lives in [`super::parse`], matching in [`super::matcher`].

use super::compiled::CompiledRegex;
use std::fmt;
use std::sync::OnceLock;

/// A character class over the hostname alphabet.
///
/// Hostnames are lowercased before matching, so the only populations that
/// matter are lowercase letters, digits, and the hyphen (underscores are
/// rare in PTR records but tolerated as literals). A class with only
/// `digit` set renders as `\d` and is normalised to [`Elem::Digits`] when
/// used as a standalone component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CharClass {
    /// Matches `a`–`z`.
    pub lower: bool,
    /// Matches `0`–`9`.
    pub digit: bool,
    /// Matches `-`.
    pub hyphen: bool,
}

impl CharClass {
    /// The class containing nothing; matches no character.
    pub const EMPTY: CharClass = CharClass { lower: false, digit: false, hyphen: false };

    /// Builds the smallest class containing every character of `s`, or
    /// `None` if `s` contains a character outside the class alphabet.
    pub fn covering(s: &str) -> Option<CharClass> {
        let mut c = CharClass::EMPTY;
        for ch in s.chars() {
            match ch {
                'a'..='z' => c.lower = true,
                '0'..='9' => c.digit = true,
                '-' => c.hyphen = true,
                _ => return None,
            }
        }
        Some(c)
    }

    /// Union of two classes.
    pub fn union(self, other: CharClass) -> CharClass {
        CharClass {
            lower: self.lower || other.lower,
            digit: self.digit || other.digit,
            hyphen: self.hyphen || other.hyphen,
        }
    }

    /// True if `ch` belongs to the class.
    pub fn contains(&self, ch: u8) -> bool {
        (self.lower && ch.is_ascii_lowercase())
            || (self.digit && ch.is_ascii_digit())
            || (self.hyphen && ch == b'-')
    }

    /// True if no population is set.
    pub fn is_empty(&self) -> bool {
        !(self.lower || self.digit || self.hyphen)
    }

    /// Renders the class body (without the `[` `]+` wrapper).
    pub(crate) fn body(&self) -> String {
        let mut s = String::new();
        if self.lower {
            s.push_str("a-z");
        }
        if self.digit {
            s.push_str("\\d");
        }
        if self.hyphen {
            s.push('-');
        }
        s
    }
}

/// A string alternation `(?:a|b|c)`, optionally suffixed `?`.
///
/// Phase 2 (§3.3) merges regexes that differ by one simple string into one
/// of these; an empty variant (a regex lacking the string entirely) makes
/// the group optional.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AltGroup {
    /// The literal options, sorted and non-empty.
    pub opts: Vec<String>,
    /// True when the group may match the empty string (`(?:a|b)?`).
    pub optional: bool,
}

impl AltGroup {
    /// Builds a group from raw variants; empty variants set `optional`.
    /// Returns `None` when no non-empty variant remains.
    pub fn from_variants<I: IntoIterator<Item = String>>(variants: I) -> Option<AltGroup> {
        let mut optional = false;
        let mut opts: Vec<String> = Vec::new();
        for v in variants {
            if v.is_empty() {
                optional = true;
            } else {
                opts.push(v);
            }
        }
        opts.sort();
        opts.dedup();
        if opts.is_empty() {
            None
        } else {
            Some(AltGroup { opts, optional })
        }
    }
}

/// One element of a dialect regex.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Elem {
    /// `^` — when present, the match must begin at the hostname start.
    StartAnchor,
    /// `$` — when present, the match must end at the hostname end.
    EndAnchor,
    /// A literal string; `.` is escaped on render.
    Lit(String),
    /// `(\d+)` — the ASN capture group.
    CaptureDigits,
    /// `\d+` — a non-captured digit run.
    Digits,
    /// `[^X]+` — one or more characters excluding those in the set.
    NotIn(String),
    /// `[...]+` — one or more characters from a class.
    Class(CharClass),
    /// `.+` — one or more of any character.
    Any,
    /// `(?:a|b)` / `(?:a|b)?` — a literal alternation.
    Alt(AltGroup),
}

impl Elem {
    /// True for the variable-width components the learner may generalise
    /// or specialise (everything except anchors, literals and alts).
    pub fn is_component(&self) -> bool {
        matches!(
            self,
            Elem::CaptureDigits | Elem::Digits | Elem::NotIn(_) | Elem::Class(_) | Elem::Any
        )
    }
}

/// A regex in the Hoiho dialect: a sequence of [`Elem`]s.
///
/// Invariants maintained by the constructors and the learner:
/// * `StartAnchor` appears only at index 0; `EndAnchor` only at the end;
/// * adjacent `Lit` elements are coalesced;
/// * at most one `Any` element.
///
/// The compiled program cache is identity-invisible: two regexes with
/// equal `elems` are equal, hash alike, and order alike whether or not
/// either has compiled yet, and a clone starts with a cold cache.
pub struct Regex {
    pub(crate) elems: Vec<Elem>,
    /// Lazily compiled bitmask program, filled on first match call (see
    /// [`Regex::program`]). Excluded from all derived-trait semantics.
    /// Boxed so a cold cache costs one pointer: candidate generation
    /// creates (and moves) orders of magnitude more regexes than it
    /// ever matches, and an inline `CompiledRegex` quintuples
    /// `size_of::<Regex>`.
    program: OnceLock<Box<CompiledRegex>>,
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Regex").field("elems", &self.elems).finish()
    }
}

impl Clone for Regex {
    fn clone(&self) -> Regex {
        Regex { elems: self.elems.clone(), program: OnceLock::new() }
    }
}

impl PartialEq for Regex {
    fn eq(&self, other: &Regex) -> bool {
        self.elems == other.elems
    }
}

impl Eq for Regex {}

impl std::hash::Hash for Regex {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.elems.hash(state);
    }
}

impl PartialOrd for Regex {
    fn partial_cmp(&self, other: &Regex) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Regex {
    fn cmp(&self, other: &Regex) -> std::cmp::Ordering {
        self.elems.cmp(&other.elems)
    }
}

impl Regex {
    /// Builds a regex from elements, normalising literals and anchors.
    pub fn new(elems: Vec<Elem>) -> Regex {
        let mut out: Vec<Elem> = Vec::with_capacity(elems.len());
        for e in elems {
            match (&e, out.last_mut()) {
                (Elem::Lit(b), Some(Elem::Lit(a))) => a.push_str(b),
                (Elem::Lit(s), _) if s.is_empty() => {}
                _ => out.push(e),
            }
        }
        Regex { elems: out, program: OnceLock::new() }
    }

    /// The compiled bitmask program for this regex, compiled on first use
    /// and cached for the regex's lifetime. Every matching entry point
    /// ([`Regex::find`], [`Regex::find_trace`], [`Regex::is_match`],
    /// [`Regex::extract`]) routes through this cache, so no caller can
    /// fall back to the tree-walking interpreter by forgetting to
    /// compile; the interpreter survives only as the explicitly named
    /// differential oracle ([`Regex::find_interpreted`]).
    pub fn program(&self) -> &CompiledRegex {
        self.program.get_or_init(|| Box::new(CompiledRegex::compile(self)))
    }

    /// The element sequence.
    pub fn elems(&self) -> &[Elem] {
        &self.elems
    }

    /// True if the regex contains the `^` anchor.
    pub fn anchored_start(&self) -> bool {
        matches!(self.elems.first(), Some(Elem::StartAnchor))
    }

    /// True if the regex contains the `$` anchor.
    pub fn anchored_end(&self) -> bool {
        matches!(self.elems.last(), Some(Elem::EndAnchor))
    }

    /// Number of capture groups (`(\d+)`) in the regex.
    pub fn capture_count(&self) -> usize {
        self.elems.iter().filter(|e| matches!(e, Elem::CaptureDigits)).count()
    }

    /// Index of the first capture element, if any.
    pub fn capture_index(&self) -> Option<usize> {
        self.elems.iter().position(|e| matches!(e, Elem::CaptureDigits))
    }

    /// How much literal text the regex memorises: total characters in
    /// literals and alternation options. Used as an anti-over-fitting
    /// tie-break — between two regexes with identical evaluation, the
    /// one that memorised less training text generalises better (the
    /// paper's stated goal of regexes "a human might have built").
    pub fn memorised_chars(&self) -> usize {
        self.elems
            .iter()
            .map(|e| match e {
                Elem::Lit(l) => l.len(),
                Elem::Alt(a) => a.opts.iter().map(|o| o.len()).sum(),
                _ => 0,
            })
            .sum()
    }

    /// Aggregate component strength: `.+` (0) < `[^X]+` (1) < class (2)
    /// < `\d+` (3). On otherwise-equal regexes, stronger components
    /// capture more structure (the point of phase 3).
    pub fn component_strength(&self) -> usize {
        self.elems
            .iter()
            .map(|e| match e {
                Elem::Any => 0,
                Elem::NotIn(_) => 1,
                Elem::Class(_) => 2,
                Elem::Digits => 3,
                _ => 0,
            })
            .sum()
    }
}

/// Escapes a literal for the textual form. Every character the parser
/// treats as syntax — in the top level, inside `[^...]`, or inside
/// `(?:...)` — is rendered as `\c`, which all three contexts read back
/// as the literal character. Hostname-alphabet characters pass as-is.
fn escape_lit(s: &str, out: &mut String) {
    for ch in s.chars() {
        if matches!(
            ch,
            '.' | '\\' | '^' | '$' | '(' | ')' | '[' | ']' | '|' | '?' | '+' | '*'
        ) {
            out.push('\\');
        }
        out.push(ch);
    }
}

/// Renders elements in the dialect's concrete syntax. Shared by
/// [`Regex`]'s `Display` and the merge phase's skeleton keys, which
/// splice a hole marker between two rendered halves and rely on the
/// output matching `Display` byte for byte.
pub(crate) fn render_elems(elems: &[Elem], s: &mut String) {
    for e in elems {
        match e {
            Elem::StartAnchor => s.push('^'),
            Elem::EndAnchor => s.push('$'),
            Elem::Lit(l) => escape_lit(l, s),
            Elem::CaptureDigits => s.push_str("(\\d+)"),
            Elem::Digits => s.push_str("\\d+"),
            Elem::NotIn(set) => {
                s.push_str("[^");
                escape_lit(set, s);
                s.push_str("]+");
            }
            Elem::Class(c) => {
                if c.digit && !c.lower && !c.hyphen {
                    s.push_str("\\d+");
                } else {
                    s.push('[');
                    s.push_str(&c.body());
                    s.push_str("]+");
                }
            }
            Elem::Any => s.push_str(".+"),
            Elem::Alt(a) => {
                s.push_str("(?:");
                for (i, o) in a.opts.iter().enumerate() {
                    if i > 0 {
                        s.push('|');
                    }
                    escape_lit(o, s);
                }
                s.push(')');
                if a.optional {
                    s.push('?');
                }
            }
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render_elems(&self.elems, &mut s);
        f.write_str(&s)
    }
}
