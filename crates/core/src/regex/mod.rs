//! A regular-expression engine for the dialect Hoiho emits.
//!
//! Hoiho never needs (or wants) full PCRE: the regexes it learns are built
//! from a small, fixed vocabulary (paper §3.2–§3.5):
//!
//! * anchors `^` and `$` (the start anchor is optional — conventions that
//!   embed an ASN at the end of a hostname are matched from any offset,
//!   e.g. `as(\d+)\.nts\.ch$` in Figure 2);
//! * literal strings (with `\.` escaping);
//! * the ASN capture `(\d+)`;
//! * non-capturing digit runs `\d+`;
//! * punctuation-exclusion components `[^\.]+`, `[^-]+`, `[^\.-]+`;
//! * character-class components `[a-z]+`, `[a-z\d]+`, `[a-z-]+`,
//!   `[\d-]+`, `[a-z\d-]+`;
//! * the wildcard `.+` (at most one per regex by construction);
//! * string alternations `(?:p|s)` and optional alternations `(?:p|s)?`.
//!
//! The engine is a plain backtracking matcher over the element AST —
//! hostnames are short (rarely beyond 80 bytes) and the dialect has no
//! nested repetition, so worst-case backtracking is shallow and bounded.
//! The AST round-trips through the textual form ([`Regex::parse`] /
//! `Display`), which the property tests pin down.

//!
//! For hot paths (learner candidate evaluation, the serving tier) the
//! AST can be lowered once into a [`CompiledRegex`] — a flat program
//! with precomputed byte-class bitmasks and literal prefilters that is
//! bit-identical to the interpreter but allocation-free per call. When
//! a whole *pool* of compiled programs is evaluated against shared
//! hostnames, a [`MultiMatcher`] (an Aho–Corasick automaton over every
//! program's required literals) scans each hostname once and dispatches
//! only to the programs that could possibly match it.

mod ast;
mod compiled;
mod matcher;
mod multi;
mod parse;

pub(crate) use ast::render_elems;
pub use ast::{AltGroup, CharClass, Elem, Regex};
pub use compiled::CompiledRegex;
pub use matcher::MatchResult;
pub use multi::{DispatchScratch, MultiMatcher};
pub use parse::ParseError;

#[cfg(test)]
mod tests;
