//! Unit tests for the regex dialect: rendering, parsing, matching, and
//! the paper's own regexes from Figures 2 and 4.

use super::*;

fn rx(s: &str) -> Regex {
    Regex::parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
}

#[test]
fn render_parse_roundtrip_paper_regexes() {
    // Every regex string appearing in the paper's figures.
    let samples = [
        r"^(\d+)\.[^\.]+\.equinix\.com$",
        r"^p(\d+)\.[^\.]+\.equinix\.com$",
        r"^s(\d+)\.[^\.]+\.equinix\.com$",
        r"^(\d+)-.+\.equinix\.com$",
        r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$",
        r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$",
        r"as(\d+)\.nts\.ch$",
        r"^as(\d+)\.example\.com$",
        r"as(\d+)\.[a-z]+\.example\.com",
        r"[a-z\d]+\.as(\d+)\.example\.com$",
        r"^(\d+)\.[a-z]+\d+\.example\.com$",
        r"^(\d+)-[^-]+-[^-]+\.equinix\.com$",
        r"^(\d+)-[^\.]+\.equinix\.com$",
    ];
    for s in samples {
        let r = rx(s);
        assert_eq!(r.to_string(), s, "roundtrip failed for {s}");
        // Parse the rendered form again: must be identical ASTs.
        assert_eq!(Regex::parse(&r.to_string()).unwrap(), r);
    }
}

#[test]
fn anchored_match_and_capture() {
    let r = rx(r"^(\d+)\.[^\.]+\.equinix\.com$");
    assert_eq!(r.extract("109.sgw.equinix.com"), Some("109"));
    assert_eq!(r.extract("714.os.equinix.com"), Some("714"));
    assert_eq!(r.extract("p714.sgw.equinix.com"), None); // `p` blocks ^(\d+)
    assert_eq!(r.extract("109.sgw.equinix.com.extra"), None); // $ anchored
}

#[test]
fn unanchored_start_matches_figure2() {
    let r = rx(r"as(\d+)\.nts\.ch$");
    assert_eq!(r.extract("ge0-2.01.p.ost.ch.as15576.nts.ch"), Some("15576"));
    assert_eq!(r.extract("01.r.cba.ch.bl.cust.as15576.nts.ch"), Some("15576"));
    assert_eq!(r.extract("as15576.nts.ch"), Some("15576"));
    assert_eq!(r.extract("as15576.nts.ch.example.org"), None);
}

#[test]
fn alternation_with_optionality() {
    let r = rx(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$");
    assert_eq!(r.extract("p714.sgw.equinix.com"), Some("714"));
    assert_eq!(r.extract("s24115.tyo.equinix.com"), Some("24115"));
    assert_eq!(r.extract("714.os.equinix.com"), Some("714"));
    assert_eq!(r.extract("x714.os.equinix.com"), None);
}

#[test]
fn mandatory_alternation() {
    let r = rx(r"^(?:p|s)(\d+)\.equinix\.com$");
    assert!(r.is_match("p714.equinix.com"));
    assert!(!r.is_match("714.equinix.com"));
}

#[test]
fn char_class_match() {
    let r = rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$");
    assert_eq!(r.extract("s714.sgw.equinix.com"), Some("714"));
    // `me1` contains a digit; [a-z\d]+ accepts it.
    assert_eq!(r.extract("714.me1.equinix.com"), Some("714"));
    // a hyphen is outside [a-z\d]+.
    assert_eq!(r.extract("714.sg-w.equinix.com"), None);
}

#[test]
fn not_in_class_excludes_only_listed() {
    let r = rx(r"^(\d+)-[^\.]+\.equinix\.com$");
    // [^\.]+ happily spans the hyphen in fr5-ix.
    assert_eq!(r.extract("24482-fr5-ix.equinix.com"), Some("24482"));
    let r2 = rx(r"^(\d+)-[^-]+-[^-]+\.equinix\.com$");
    assert_eq!(r2.extract("24482-fr5-ix.equinix.com"), Some("24482"));
    assert_eq!(r2.extract("24482-fr5ix.equinix.com"), None);
}

#[test]
fn any_component() {
    let r = rx(r"^(\d+)-.+\.equinix\.com$");
    assert_eq!(r.extract("22822-2.tyo.equinix.com"), Some("22822"));
    assert_eq!(r.extract("54827-dc5-ix2.equinix.com"), Some("54827"));
    assert_eq!(r.extract("54827.dc5.equinix.com"), None); // needs the hyphen
}

#[test]
fn digits_component_non_capturing() {
    let r = rx(r"^(\d+)\.[a-z]+\d+\.example\.com$");
    let m = r.find("605.pop7.example.com").unwrap();
    assert_eq!(m.captures.len(), 1);
    assert_eq!(m.capture("605.pop7.example.com", 0), Some("605"));
}

#[test]
fn greedy_capture_takes_whole_run() {
    let r = rx(r"(\d+)-");
    // Unanchored both ends; capture should take a full digit run.
    assert_eq!(r.extract("abc12345-x"), Some("12345"));
}

#[test]
fn leftmost_match_preferred() {
    let r = rx(r"as(\d+)\.");
    assert_eq!(r.extract("as100.as200.example.com"), Some("100"));
}

#[test]
fn backtracking_across_components() {
    // [^-]+ must give back characters so the literal `-ix` can match.
    let r = rx(r"^[^\.]+-ix\.example\.com$");
    assert!(r.is_match("fr5-ix.example.com"));
    assert!(r.is_match("a-b-c-ix.example.com"));
    assert!(!r.is_match("fr5ix.example.com"));
}

#[test]
fn empty_capture_rejected() {
    let r = rx(r"^as(\d+)\.x\.com$");
    assert!(!r.is_match("as.x.com"));
}

#[test]
fn parse_errors() {
    for bad in [
        "a(b)c",        // capture must be (\d+) or (?:
        "[q]+",         // unsupported positive class
        "[a-z]",        // missing +
        "(?:a|b",       // unterminated
        "a^b",          // ^ in the middle
        "a$b",          // $ in the middle
        "a.b",          // bare dot
        "x\\",          // dangling escape
        "[^a-z",        // unterminated class
        "(?:)",         // no options
        "a+",           // bare +
    ] {
        assert!(Regex::parse(bad).is_err(), "expected parse error for {bad:?}");
    }
}

#[test]
fn alt_with_explicit_empty_option_becomes_optional() {
    let r = Regex::parse("(?:p|)x").unwrap();
    match &r.elems()[0] {
        Elem::Alt(a) => {
            assert!(a.optional);
            assert_eq!(a.opts, vec!["p".to_string()]);
        }
        other => panic!("expected alt, got {other:?}"),
    }
    assert_eq!(r.to_string(), "(?:p)?x");
}

#[test]
fn lit_coalescing_in_constructor() {
    let r = Regex::new(vec![
        Elem::Lit("a".into()),
        Elem::Lit("s".into()),
        Elem::CaptureDigits,
        Elem::Lit(String::new()),
    ]);
    assert_eq!(r.elems().len(), 2);
    assert_eq!(r.to_string(), r"as(\d+)");
}

#[test]
fn capture_metadata() {
    let r = rx(r"^as(\d+)\.x\.com$");
    assert!(r.anchored_start());
    assert!(r.anchored_end());
    assert_eq!(r.capture_count(), 1);
    assert_eq!(r.capture_index(), Some(2));
    let r2 = rx(r"as(\d+)\.x\.com");
    assert!(!r2.anchored_start());
    assert!(!r2.anchored_end());
}

#[test]
fn class_covering() {
    assert_eq!(
        CharClass::covering("abc"),
        Some(CharClass { lower: true, digit: false, hyphen: false })
    );
    assert_eq!(
        CharClass::covering("a1-b"),
        Some(CharClass { lower: true, digit: true, hyphen: true })
    );
    assert_eq!(CharClass::covering("a.b"), None);
    assert_eq!(CharClass::covering(""), Some(CharClass::EMPTY));
}

#[test]
fn digit_only_class_renders_as_digits() {
    let r = Regex::new(vec![Elem::Class(CharClass { lower: false, digit: true, hyphen: false })]);
    assert_eq!(r.to_string(), r"\d+");
    // And parses back to Elem::Digits — string-level fixpoint.
    assert_eq!(Regex::parse(r"\d+").unwrap().to_string(), r"\d+");
}

#[test]
fn class_with_hyphen_renders_and_matches() {
    let r = rx(r"^[a-z\d-]+\.x\.com$");
    assert!(r.is_match("ae-1-3.x.com"));
    assert!(!r.is_match("ae_1.x.com"));
    assert_eq!(r.to_string(), r"^[a-z\d-]+\.x\.com$");
    let r2 = rx(r"^[\d-]+\.x\.com$");
    assert!(r2.is_match("1-2-3.x.com"));
    assert!(!r2.is_match("a-1.x.com"));
}

#[test]
fn multiple_captures_supported() {
    let r = rx(r"^(\d+)-(\d+)\.x\.com$");
    let m = r.find("10-20.x.com").unwrap();
    assert_eq!(m.capture("10-20.x.com", 0), Some("10"));
    assert_eq!(m.capture("10-20.x.com", 1), Some("20"));
}

#[test]
fn span_reported() {
    let r = rx(r"as(\d+)\.nts\.ch$");
    let h = "01.r.cba.ch.bl.cust.as15576.nts.ch";
    let m = r.find(h).unwrap();
    assert_eq!(&h[m.span.0..m.span.1], "as15576.nts.ch");
}
