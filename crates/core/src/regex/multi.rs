//! Multi-pattern literal dispatch: one Aho–Corasick scan per hostname
//! decides which pool regexes are worth running at all.
//!
//! The learner's outcome matrix (phase 4) and class embedding (phase 3)
//! evaluate a shared pool of P candidate regexes against a shared set of
//! H hostnames. Even with compiled programs that is O(P·H) independent
//! scans, and the per-program literal prefilter cannot amortise anything
//! across the pool. A [`MultiMatcher`] inverts the loop: it is built
//! once over the **required literals** of every program in the pool — a
//! from-scratch, std-only Aho–Corasick automaton with BFS-built failure
//! links flattened into a dense goto-complete transition table — and
//! then a single left-to-right scan of one hostname reports which
//! programs still have a chance of matching it.
//!
//! ## Dispatch rule
//!
//! Every [`Lit`](super::Elem::Lit) element of the dialect is consumed in
//! sequence on any match, so a regex can only match a hostname that
//! contains **all** of its required literals as substrings — **with
//! multiplicity**: a program whose ops require the same literal k times
//! consumes k pairwise-disjoint occurrences, so the host must contain at
//! least k non-overlapping occurrences of it. The scan counts disjoint
//! occurrences greedily by end position (the classic interval-scheduling
//! argument makes that count maximal, so requiring `count ≥ k` rejects
//! nothing a match could need). This matters for dash-heavy pools:
//! `as(\d+)-[^-]+-[^-]+-[^-]+` requires three `-`s and is not dispatched
//! for a host with one.
//! (This deliberately widens the per-program `prefilter`, which only
//! keeps the longest literal and skips `^`-anchored programs entirely:
//! here even anchored programs dispatch on their literals, because the
//! point is skipping *pool members*, not start offsets.) Alternations
//! contribute no constraint — an `(?:a|b)` branch is not required text —
//! which is a sound widening. Programs with no required literal at all
//! form the fallback bucket: their requirement bitset is empty, so they
//! are dispatched for every hostname.
//!
//! Dispatch is therefore a **superset-exact filter**: a program that
//! matches a hostname is always dispatched for it (no false negatives),
//! while a dispatched program may still fail to match. Callers that run
//! only dispatched programs and treat the rest as non-matches get
//! bit-identical results to running everything — the property suite in
//! `tests/properties.rs` and the `multimatch` fuzz target pin this down.
//!
//! ## Layout
//!
//! Hostname text is dense over `[a-z0-9.-]`, so bytes are first mapped
//! through a 256-entry class table: bytes appearing in no literal share
//! class 0, whose transition from every state is the root (they can
//! extend no literal). The transition table is `states × alphabet`
//! `u32`s, goto-complete (failure links are resolved away during the
//! BFS), so the hot loop is one class lookup and one table load per
//! byte. Each state carries the merged output list of every literal
//! ending there (its own plus all dict-suffix outputs, merged during the
//! same BFS); each reported occurrence then sets one bit in a flat
//! requirement-slot bitset, and a program is dispatched exactly when its
//! requirement bits are all covered — so the scan does no per-program
//! work at all.

use super::compiled::CompiledRegex;
use std::collections::HashMap;

/// An Aho–Corasick automaton over the required literals of a regex
/// pool, answering "which pool members could match this hostname?" in
/// one scan. Build once per pool (see [`MultiMatcher::build`]), then
/// dispatch with a reusable [`DispatchScratch`] or, for pools of at
/// most 64 programs and requirement slots, the allocation-free
/// [`MultiMatcher::dispatch_mask`].
///
/// Requirements are tracked as a flat bitset of **slots**: literal
/// `lid` owns slots `slot_base[lid] .. slot_base[lid] + max_mult[lid]`,
/// one per multiplicity level some pool member requires. The scan sets
/// slot `base + n - 1` when the n-th disjoint occurrence of a literal
/// arrives; a program is dispatched exactly when the host's slot bitset
/// covers the program's requirement bitset. A program with no required
/// literal has an empty requirement bitset and is therefore dispatched
/// for every host — the fallback bucket needs no special case.
#[derive(Debug, Clone)]
pub struct MultiMatcher {
    /// Byte value → dense alphabet class; 0 = "appears in no literal".
    byte_class: [u16; 256],
    /// Number of classes, including class 0.
    alphabet: u32,
    /// Goto-complete transition table, `states × alphabet`.
    trans: Vec<u32>,
    /// Per-state ranges into `out_lits` (length `states + 1`).
    out_start: Vec<u32>,
    /// Merged output lists: literal ids ending at each state.
    out_lits: Vec<u32>,
    /// Per-literal byte length (for the disjointness check).
    lit_len: Vec<u32>,
    /// Per-literal highest multiplicity any regex requires; disjoint
    /// occurrences beyond it carry no information.
    max_mult: Vec<u32>,
    /// First requirement slot of each literal (length `lits`).
    slot_base: Vec<u32>,
    /// Words per requirement bitset: `ceil(slots / 64)`.
    mask_words: usize,
    /// Per-regex requirement bitsets, `mask_words` words each.
    regex_masks: Vec<u64>,
    /// Number of programs the automaton dispatches over.
    regexes: usize,
    /// Whether [`MultiMatcher::dispatch_mask`] is available: at most 64
    /// programs and at most 64 requirement slots.
    mask64: bool,
}

/// Reusable per-thread dispatch state: epoch-stamped "seen this host"
/// marks, so consecutive dispatches never pay for clearing the
/// per-literal arrays; the slot bitset is a handful of words and is
/// zeroed directly.
#[derive(Debug, Clone)]
pub struct DispatchScratch {
    epoch: u64,
    /// Per-literal epoch stamp guarding `lit_count` / `lit_end`.
    lit_seen: Vec<u64>,
    /// Disjoint occurrences of each literal in the current host.
    lit_count: Vec<u32>,
    /// End offset of the last accepted occurrence of each literal.
    lit_end: Vec<u32>,
    /// Requirement slots satisfied by the current host (`mask_words`).
    seen: Vec<u64>,
    dispatched: Vec<u32>,
}

impl MultiMatcher {
    /// Builds the automaton over a pool of compiled programs. Program
    /// order defines the regex indices reported by dispatch.
    pub fn build<'a>(programs: impl IntoIterator<Item = &'a CompiledRegex>) -> MultiMatcher {
        // Intern distinct literals across the pool; per regex, its
        // `(literal id, multiplicity)` requirements — a literal the
        // program consumes k times needs k disjoint occurrences.
        let mut lits: Vec<&'a [u8]> = Vec::new();
        let mut ids: HashMap<&'a [u8], u32> = HashMap::new();
        let mut per_regex: Vec<Vec<(u32, u32)>> = Vec::new();
        for p in programs {
            let mut mine: Vec<u32> = p
                .required_literals()
                .map(|l| {
                    *ids.entry(l).or_insert_with(|| {
                        lits.push(l);
                        lits.len() as u32 - 1
                    })
                })
                .collect();
            mine.sort_unstable();
            let mut reqs: Vec<(u32, u32)> = Vec::new();
            for lid in mine.drain(..) {
                match reqs.last_mut() {
                    Some((last, k)) if *last == lid => *k += 1,
                    _ => reqs.push((lid, 1)),
                }
            }
            per_regex.push(reqs);
        }

        // Dense byte classes: only bytes that occur in some literal get
        // a class of their own; everything else shares class 0, which
        // can never advance past the root.
        let mut byte_class = [0u16; 256];
        let mut alphabet = 1u32;
        for lit in &lits {
            for &b in *lit {
                if byte_class[b as usize] == 0 {
                    byte_class[b as usize] = alphabet as u16;
                    alphabet += 1;
                }
            }
        }
        let alpha = alphabet as usize;

        // Trie over class-mapped literals. `NO_EDGE` marks absent goto
        // edges until the BFS completes the table.
        const NO_EDGE: u32 = u32::MAX;
        let mut trans: Vec<u32> = vec![NO_EDGE; alpha];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        for (lit_id, lit) in lits.iter().enumerate() {
            let mut s = 0usize;
            for &b in *lit {
                let cell = s * alpha + byte_class[b as usize] as usize;
                if trans[cell] == NO_EDGE {
                    trans[cell] = out.len() as u32;
                    trans.extend(std::iter::repeat(NO_EDGE).take(alpha));
                    out.push(Vec::new());
                }
                s = trans[cell] as usize;
            }
            out[s].push(lit_id as u32);
        }

        // BFS: compute failure links, resolve them into the table
        // (goto-complete), and merge dict-suffix output lists. A state
        // is popped only after its failure state (strictly shallower)
        // has been completed, so `trans[fail..]` and `out[fail]` are
        // always final when read.
        let nstates = out.len();
        let mut fail = vec![0u32; nstates];
        let mut queue = std::collections::VecDeque::new();
        for c in 0..alpha {
            if trans[c] == NO_EDGE {
                trans[c] = 0;
            } else if trans[c] != 0 {
                queue.push_back(trans[c]);
            }
        }
        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            let f = fail[u] as usize;
            if !out[f].is_empty() {
                let suffix_outs = out[f].clone();
                out[u].extend(suffix_outs);
            }
            for c in 0..alpha {
                let cell = u * alpha + c;
                let via_fail = trans[f * alpha + c];
                if trans[cell] == NO_EDGE {
                    trans[cell] = via_fail;
                } else {
                    fail[trans[cell] as usize] = via_fail;
                    queue.push_back(trans[cell]);
                }
            }
        }

        // Flatten outputs and per-literal regex references.
        let mut out_start = Vec::with_capacity(nstates + 1);
        let mut out_lits = Vec::new();
        out_start.push(0u32);
        for state_out in &out {
            out_lits.extend_from_slice(state_out);
            out_start.push(out_lits.len() as u32);
        }
        let lit_len: Vec<u32> = lits.iter().map(|l| l.len() as u32).collect();
        let mut max_mult = vec![0u32; lits.len()];
        for reqs in &per_regex {
            for &(lid, k) in reqs {
                max_mult[lid as usize] = max_mult[lid as usize].max(k);
            }
        }

        // Requirement slots: literal `lid` owns slots
        // `slot_base[lid] .. slot_base[lid] + max_mult[lid]`, one per
        // multiplicity level some regex requires.
        let mut slot_base = Vec::with_capacity(lits.len());
        let mut slots = 0u32;
        for &m in &max_mult {
            slot_base.push(slots);
            slots += m;
        }
        let mask_words = (slots as usize).div_ceil(64);
        let mut regex_masks = vec![0u64; per_regex.len() * mask_words];
        for (r, reqs) in per_regex.iter().enumerate() {
            let words = &mut regex_masks[r * mask_words..(r + 1) * mask_words];
            for &(lid, k) in reqs {
                // Slots base..base+k: "at least j disjoint occurrences"
                // for each level j <= k.
                for level in 0..k {
                    let slot = (slot_base[lid as usize] + level) as usize;
                    words[slot / 64] |= 1u64 << (slot % 64);
                }
            }
        }
        let mask64 = per_regex.len() <= 64 && slots <= 64;

        MultiMatcher {
            byte_class,
            alphabet,
            trans,
            out_start,
            out_lits,
            lit_len,
            max_mult,
            slot_base,
            mask_words,
            regex_masks,
            regexes: per_regex.len(),
            mask64,
        }
    }

    /// Number of programs the automaton dispatches over.
    pub fn len(&self) -> usize {
        self.regexes
    }

    /// True for an empty pool (dispatch always returns nothing).
    pub fn is_empty(&self) -> bool {
        self.regexes == 0
    }

    /// A scratch buffer sized for this automaton.
    pub fn scratch(&self) -> DispatchScratch {
        let nlits = self.lit_len.len();
        DispatchScratch {
            epoch: 0,
            lit_seen: vec![0; nlits],
            lit_count: vec![0; nlits],
            lit_end: vec![0; nlits],
            seen: vec![0; self.mask_words],
            dispatched: Vec::with_capacity(self.regexes),
        }
    }

    /// One scan of `host`: returns the indices of every program whose
    /// required literals all occur in it (with multiplicity), plus the
    /// fallback bucket. Each index appears exactly once, in ascending
    /// pool order.
    ///
    /// The scan itself only sets requirement-slot bits — no per-program
    /// work per occurrence — and the per-program covering check at the
    /// end is a handful of word compares, so dispatch stays cheap even
    /// for pools whose literals occur many times per host.
    pub fn dispatch<'s>(&self, host: &[u8], scratch: &'s mut DispatchScratch) -> &'s [u32] {
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        scratch.dispatched.clear();
        scratch.seen.iter_mut().for_each(|w| *w = 0);
        let alpha = self.alphabet as usize;
        let mut state = 0usize;
        for (i, &b) in host.iter().enumerate() {
            state = self.trans[state * alpha + self.byte_class[b as usize] as usize] as usize;
            let (s, e) = (self.out_start[state] as usize, self.out_start[state + 1] as usize);
            for &lit in &self.out_lits[s..e] {
                let lit = lit as usize;
                if scratch.lit_seen[lit] != epoch {
                    scratch.lit_seen[lit] = epoch;
                    scratch.lit_count[lit] = 0;
                    scratch.lit_end[lit] = 0;
                }
                // Greedy disjoint-occurrence counting: this occurrence
                // ends at `i + 1`; accept it only when it starts at or
                // after the end of the last accepted one. Accepting by
                // end order maximises the count, so `count >= k` holds
                // for every host a k-fold literal could match.
                let end = (i + 1) as u32;
                if end - self.lit_len[lit] < scratch.lit_end[lit] {
                    continue;
                }
                scratch.lit_end[lit] = end;
                let n = scratch.lit_count[lit] + 1;
                scratch.lit_count[lit] = n;
                if n <= self.max_mult[lit] {
                    let slot = (self.slot_base[lit] + n - 1) as usize;
                    scratch.seen[slot / 64] |= 1u64 << (slot % 64);
                }
            }
        }
        // A program is dispatched when its requirement bitset is
        // covered; an empty bitset (fallback) is trivially covered.
        let w = self.mask_words;
        for r in 0..self.regexes {
            let m = &self.regex_masks[r * w..(r + 1) * w];
            if m.iter().zip(scratch.seen.iter()).all(|(&mw, &sw)| sw & mw == mw) {
                scratch.dispatched.push(r as u32);
            }
        }
        &scratch.dispatched
    }

    /// True when [`dispatch_mask`](MultiMatcher::dispatch_mask) is
    /// available: at most 64 programs and 64 requirement slots
    /// (literal × multiplicity-level pairs).
    pub fn supports_mask(&self) -> bool {
        self.mask64
    }

    /// Allocation-free dispatch for small pools: bit `i` is set exactly
    /// when program `i` would be dispatched — ascending bit order is
    /// pool order, so `trailing_zeros` iteration preserves rank.
    ///
    /// # Panics
    ///
    /// When `!self.supports_mask()`.
    pub fn dispatch_mask(&self, host: &[u8]) -> u64 {
        assert!(self.mask64, "dispatch_mask requires supports_mask()");
        // `supports_mask` bounds the slot total by 64, and every literal
        // owns at least one slot, so fixed-size occurrence state fits on
        // the stack (and the requirement bitsets are single words).
        let mut counts = [0u32; 64];
        let mut ends = [0u32; 64];
        let mut seen = 0u64;
        let alpha = self.alphabet as usize;
        let mut state = 0usize;
        for (i, &b) in host.iter().enumerate() {
            state = self.trans[state * alpha + self.byte_class[b as usize] as usize] as usize;
            let (s, e) = (self.out_start[state] as usize, self.out_start[state + 1] as usize);
            for &lit in &self.out_lits[s..e] {
                let lit = lit as usize;
                let end = (i + 1) as u32;
                if end - self.lit_len[lit] < ends[lit] {
                    continue; // overlaps the last accepted occurrence
                }
                ends[lit] = end;
                let n = counts[lit] + 1;
                counts[lit] = n;
                if n <= self.max_mult[lit] {
                    seen |= 1u64 << (self.slot_base[lit] + n - 1);
                }
            }
        }
        // A fallback program's mask is 0 and `seen & 0 == 0` always
        // holds, so the bucket needs no special case here. With at most
        // 64 slots every requirement bitset is one word (or absent
        // entirely when the pool has no literals at all).
        let mut dispatched = 0u64;
        for r in 0..self.regexes {
            let m = if self.mask_words == 1 { self.regex_masks[r] } else { 0 };
            if seen & m == m {
                dispatched |= 1u64 << r;
            }
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::super::Regex;
    use super::*;

    fn programs(patterns: &[&str]) -> Vec<CompiledRegex> {
        patterns.iter().map(|p| Regex::parse(p).unwrap().compiled()).collect()
    }

    /// Brute-force oracle: dispatch must include every program that
    /// matches, and both dispatch paths must agree.
    fn assert_superset_exact(patterns: &[&str], hosts: &[&str]) {
        let progs = programs(patterns);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        for host in hosts {
            let dispatched = mm.dispatch(host.as_bytes(), &mut scratch).to_vec();
            let mut flags = vec![false; progs.len()];
            for &r in &dispatched {
                assert!(!flags[r as usize], "duplicate dispatch of {r} on {host:?}");
                flags[r as usize] = true;
            }
            for (i, p) in progs.iter().enumerate() {
                if p.is_match(host) {
                    assert!(
                        flags[i],
                        "false negative: {:?} matches {host:?} but was not dispatched",
                        patterns[i]
                    );
                }
            }
            if mm.supports_mask() {
                let mask = mm.dispatch_mask(host.as_bytes());
                for (i, &f) in flags.iter().enumerate() {
                    assert_eq!(mask >> i & 1 == 1, f, "mask/scratch diverge on {host:?} bit {i}");
                }
            }
        }
    }

    #[test]
    fn pool_dispatch_is_superset_exact() {
        let patterns = [
            r"^as(\d+)\.pop\d+\.example\.com$", // anchored: literals still dispatch
            r"as(\d+)\.nts\.ch$",
            r"^(\d+)-.+\.equinix\.com$",
            r"(\d+)",     // literal-free: fallback, always dispatched
            r"^(\d+)$",   // anchored and literal-free: fallback too
        ];
        let hosts = [
            "as100.pop1.example.com",
            "as15576.nts.ch",
            "24482-fr5-ix.equinix.com",
            "plainhost.example.org",
            "714",
            "",
            "nts.ch.as1.pop2.example.com", // literals present, order scrambled
        ];
        assert_superset_exact(&patterns, &hosts);
    }

    #[test]
    fn empty_pool_dispatches_nothing() {
        let mm = MultiMatcher::build(std::iter::empty::<&CompiledRegex>());
        assert!(mm.is_empty());
        let mut scratch = mm.scratch();
        assert!(mm.dispatch(b"any.host.example.com", &mut scratch).is_empty());
        assert_eq!(mm.dispatch_mask(b"any.host.example.com"), 0);
    }

    #[test]
    fn all_fallback_pool_always_dispatches_everything() {
        let progs = programs(&[r"(\d+)", r"^(\d+)$", r"[a-z]+(\d+)"]);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        for host in ["", "abc", "as100.example.com"] {
            let mut d = mm.dispatch(host.as_bytes(), &mut scratch).to_vec();
            d.sort_unstable();
            assert_eq!(d, vec![0, 1, 2], "on {host:?}");
            assert_eq!(mm.dispatch_mask(host.as_bytes()), 0b111);
        }
    }

    #[test]
    fn literal_suffix_and_prefix_of_another_literal() {
        // "ix.example.com" is a suffix of "-ix.example.com"; "as" is a
        // prefix of "as1". Dict-suffix output merging must credit both.
        assert_superset_exact(
            &[
                r"(\d+)-ix\.example\.com$",
                r"(\d+)ix\.example\.com$",
                r"^as(\d+)\.x$",
                r"^as1(\d+)\.x$",
            ],
            &[
                "5-ix.example.com",
                "5ix.example.com",
                "as9.x",
                "as19.x",
                "ix.example.com",
                "as.x",
            ],
        );
    }

    #[test]
    fn overlapping_occurrences_counted_once() {
        // "aa" occurs at overlapping offsets in "aaaa"; the per-host
        // epoch stamp must credit the literal exactly once.
        let progs = programs(&[r"aa(\d+)"]);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        assert_eq!(mm.dispatch(b"aaaa1", &mut scratch), &[0]);
        assert_eq!(mm.dispatch(b"bbbb1", &mut scratch), &[0u32; 0]);
    }

    #[test]
    fn all_literals_required_not_any() {
        // Two literals; a host containing only one must not dispatch.
        let progs = programs(&[r"^as(\d+)-ix\.example\.net$"]);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        assert!(mm.dispatch(b"as1.example.org", &mut scratch).is_empty());
        assert!(mm.dispatch(b"1-ix.example.net", &mut scratch).is_empty());
        assert_eq!(mm.dispatch(b"as1-ix.example.net", &mut scratch), &[0]);
    }

    #[test]
    fn repeated_literals_require_multiplicity() {
        // Three `-` literals: hosts with fewer disjoint dashes must not
        // dispatch; the singly-dashed pool member still must.
        let progs = programs(&[r"^as(\d+)-[^-]+-[^-]+-[^-]+\.example\.net$", r"as(\d+)-"]);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        let mut one = mm.dispatch(b"as1-ae1.example.net", &mut scratch).to_vec();
        one.sort_unstable();
        assert_eq!(one, vec![1]);
        assert_eq!(mm.dispatch_mask(b"as1-ae1.example.net"), 0b10);
        let mut three = mm.dispatch(b"as1-xe-0-0.example.net", &mut scratch).to_vec();
        three.sort_unstable();
        assert_eq!(three, vec![0, 1]);
        assert_eq!(mm.dispatch_mask(b"as1-xe-0-0.example.net"), 0b11);
    }

    #[test]
    fn multiplicity_counts_disjoint_occurrences_only() {
        // `aa` twice: "aaa" holds two *overlapping* occurrences but only
        // one disjoint, so it must not dispatch; "aaaa" holds two.
        let progs = programs(&[r"aa(\d+)aa"]);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        assert!(mm.dispatch(b"aaa", &mut scratch).is_empty());
        assert_eq!(mm.dispatch_mask(b"aaa"), 0);
        assert_eq!(mm.dispatch(b"aaaa", &mut scratch), &[0]);
        assert_eq!(mm.dispatch_mask(b"aaaa"), 0b1);
        assert_eq!(mm.dispatch(b"aa1aa", &mut scratch), &[0]);
        // Superset-exactness on digit-separated repeats.
        assert_superset_exact(&[r"aa(\d+)aa"], &["aaa", "aaaa", "aa1aa", "aa12aa34aa", ""]);
    }

    #[test]
    fn scratch_reuse_across_hosts_is_clean() {
        // The epoch discipline must not leak literal credits from a
        // previous host into the next.
        let progs = programs(&[r"abc(\d+)def"]);
        let mm = MultiMatcher::build(progs.iter());
        let mut scratch = mm.scratch();
        assert_eq!(mm.dispatch(b"abc1def", &mut scratch), &[0]);
        assert!(mm.dispatch(b"abc1", &mut scratch).is_empty());
        assert!(mm.dispatch(b"def1", &mut scratch).is_empty());
        assert_eq!(mm.dispatch(b"def-abc", &mut scratch), &[0]);
    }
}
