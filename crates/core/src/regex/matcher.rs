//! Backtracking matcher with capture extraction.
//!
//! The dialect has no nested repetition, so a match is a walk over the
//! element list with greedy one-or-more components and backtracking on
//! failure. Hostnames are short ASCII strings; the matcher works on bytes.

use super::ast::{Elem, Regex};

/// A successful match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Byte range of the whole match within the hostname.
    pub span: (usize, usize),
    /// Byte ranges of each `(\d+)` capture, in element order.
    pub captures: Vec<(usize, usize)>,
}

impl MatchResult {
    /// The text of capture group `i` within `hostname`.
    pub fn capture<'h>(&self, hostname: &'h str, i: usize) -> Option<&'h str> {
        self.captures.get(i).map(|&(s, e)| &hostname[s..e])
    }
}

impl Regex {
    /// Matches `hostname` (which should already be lowercase) and returns
    /// the first match found, preferring the leftmost start offset.
    ///
    /// Anchoring follows the element list: with `^` only offset 0 is
    /// tried; with `$` the match must consume through the end.
    ///
    /// Runs on the cached compiled program ([`Regex::program`]), which is
    /// bit-identical to the interpreter; the tree-walking path survives
    /// only as [`Regex::find_interpreted`].
    pub fn find(&self, hostname: &str) -> Option<MatchResult> {
        self.program().find(hostname)
    }

    /// Like [`Regex::find`], but also reports the byte span each element
    /// consumed, aligned with [`Regex::elems`] (anchors get zero-width
    /// spans; an unmatched optional alternation gets a zero-width span at
    /// its position). The char-class phase (§3.4) uses this to see which
    /// substrings a `[^\.]+` component actually matched.
    pub fn find_trace(&self, hostname: &str) -> Option<(MatchResult, Vec<(usize, usize)>)> {
        self.program().find_trace(hostname)
    }

    /// The tree-walking interpreter's answer for `hostname`. This is the
    /// differential oracle the compiled engine is tested against — it
    /// never touches the program cache. Production callers want
    /// [`Regex::find`].
    pub fn find_interpreted(&self, hostname: &str) -> Option<MatchResult> {
        self.find_impl(hostname, None)
    }

    /// Interpreter counterpart of [`Regex::find_trace`], for differential
    /// tests; see [`Regex::find_interpreted`].
    pub fn find_trace_interpreted(
        &self,
        hostname: &str,
    ) -> Option<(MatchResult, Vec<(usize, usize)>)> {
        let mut trace = vec![(0usize, 0usize); self.elems().len()];
        let m = self.find_impl(hostname, Some(&mut trace))?;
        Some((m, trace))
    }

    fn find_impl(
        &self,
        hostname: &str,
        mut trace: Option<&mut [(usize, usize)]>,
    ) -> Option<MatchResult> {
        let h = hostname.as_bytes();
        let elems = self.elems();
        let (body, base, must_start) = match elems.first() {
            Some(Elem::StartAnchor) => (&elems[1..], 1usize, true),
            _ => (elems, 0usize, false),
        };
        // With `^` only offset 0 is tried; otherwise scan leftmost-first.
        let last_start = if must_start { 0 } else { h.len() };
        let mut caps: Vec<(usize, usize)> = Vec::new();
        for start in 0..=last_start {
            caps.clear();
            let tr = trace.as_deref_mut();
            if let Some(end) = match_seq(body, base, h, start, &mut caps, tr) {
                if must_start {
                    if let Some(t) = trace.as_deref_mut() {
                        t[0] = (0, 0);
                    }
                }
                return Some(MatchResult { span: (start, end), captures: caps });
            }
        }
        None
    }

    /// True if the regex matches `hostname` at all.
    pub fn is_match(&self, hostname: &str) -> bool {
        self.find(hostname).is_some()
    }

    /// Convenience: the text of the first capture of the first match.
    pub fn extract<'h>(&self, hostname: &'h str) -> Option<&'h str> {
        let m = self.find(hostname)?;
        m.captures.first().map(|&(s, e)| &hostname[s..e])
    }
}

/// Matches `elems` against `h[pos..]`, returning the end offset of the
/// match. `caps` accumulates capture ranges; on failure its length is
/// restored by the caller's recursion structure. `idx` is the index of
/// `elems[0]` in the full element list, used to address `trace`; trace
/// entries are written on the successful unwind, so stale writes from
/// failed branches are always overwritten.
fn match_seq(
    elems: &[Elem],
    idx: usize,
    h: &[u8],
    pos: usize,
    caps: &mut Vec<(usize, usize)>,
    mut trace: Option<&mut [(usize, usize)]>,
) -> Option<usize> {
    let Some((first, rest)) = elems.split_first() else {
        return Some(pos);
    };
    // Records this element's span on success and propagates the end.
    macro_rules! ok {
        ($consumed_end:expr, $end:expr) => {{
            if let Some(t) = trace.as_deref_mut() {
                t[idx] = (pos, $consumed_end);
            }
            return Some($end);
        }};
    }
    match first {
        Elem::StartAnchor => {
            // `^` other than at index 0 never matches mid-string.
            if pos == 0 {
                if let Some(end) = match_seq(rest, idx + 1, h, pos, caps, trace.as_deref_mut()) {
                    ok!(pos, end);
                }
            }
            None
        }
        Elem::EndAnchor => {
            if pos == h.len() {
                if let Some(end) = match_seq(rest, idx + 1, h, pos, caps, trace.as_deref_mut()) {
                    ok!(pos, end);
                }
            }
            None
        }
        Elem::Lit(l) => {
            let lb = l.as_bytes();
            if h.len() - pos >= lb.len() && &h[pos..pos + lb.len()] == lb {
                let np = pos + lb.len();
                if let Some(end) = match_seq(rest, idx + 1, h, np, caps, trace.as_deref_mut()) {
                    ok!(np, end);
                }
            }
            None
        }
        Elem::Alt(a) => {
            for opt in &a.opts {
                let ob = opt.as_bytes();
                if h.len() - pos >= ob.len() && &h[pos..pos + ob.len()] == ob {
                    let np = pos + ob.len();
                    if let Some(end) = match_seq(rest, idx + 1, h, np, caps, trace.as_deref_mut())
                    {
                        ok!(np, end);
                    }
                }
            }
            if a.optional {
                if let Some(end) = match_seq(rest, idx + 1, h, pos, caps, trace.as_deref_mut()) {
                    ok!(pos, end);
                }
            }
            None
        }
        Elem::CaptureDigits => {
            let max = run_len(h, pos, |c| c.is_ascii_digit());
            // Greedy with backtracking; at least one digit.
            for take in (1..=max).rev() {
                caps.push((pos, pos + take));
                if let Some(end) =
                    match_seq(rest, idx + 1, h, pos + take, caps, trace.as_deref_mut())
                {
                    ok!(pos + take, end);
                }
                caps.pop();
            }
            None
        }
        Elem::Digits => {
            backtrack_component(rest, idx, h, pos, caps, trace, |c| c.is_ascii_digit())
        }
        Elem::NotIn(set) => {
            let set = set.as_bytes();
            backtrack_component(rest, idx, h, pos, caps, trace, |c| !set.contains(&c))
        }
        Elem::Class(cls) => {
            let cls = *cls;
            backtrack_component(rest, idx, h, pos, caps, trace, move |c| cls.contains(c))
        }
        Elem::Any => backtrack_component(rest, idx, h, pos, caps, trace, |_| true),
    }
}

/// Length of the run of bytes satisfying `pred` starting at `pos`.
fn run_len(h: &[u8], pos: usize, pred: impl Fn(u8) -> bool) -> usize {
    h[pos..].iter().take_while(|&&c| pred(c)).count()
}

/// Greedy one-or-more component: consume the longest run, backtracking one
/// byte at a time. `idx` addresses the component itself within the trace.
fn backtrack_component(
    rest: &[Elem],
    idx: usize,
    h: &[u8],
    pos: usize,
    caps: &mut Vec<(usize, usize)>,
    mut trace: Option<&mut [(usize, usize)]>,
    pred: impl Fn(u8) -> bool,
) -> Option<usize> {
    let max = run_len(h, pos, &pred);
    for take in (1..=max).rev() {
        let mark = caps.len();
        if let Some(end) = match_seq(rest, idx + 1, h, pos + take, caps, trace.as_deref_mut()) {
            if let Some(t) = trace.as_deref_mut() {
                t[idx] = (pos, pos + take);
            }
            return Some(end);
        }
        caps.truncate(mark);
    }
    None
}
