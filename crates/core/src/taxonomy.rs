//! Table 1 taxonomy: how and where operators embed ASNs in hostnames.
//!
//! * **Simple** — only an `as`-prefaced ASN and the suffix:
//!   `^as(\d+)\.example\.com$`.
//! * **Start** — `as`-prefaced ASN at the start of the hostname, with
//!   more information after it: `^as(\d+)\.[a-z]+\.example\.com$`.
//! * **End** — `as`-prefaced ASN immediately before the suffix, with
//!   information before it: `[a-z\d]+\.as(\d+)\.example\.com$`.
//! * **Bare** — no alphabetic characters preface the ASN:
//!   `^(\d+)\.[a-z]+\d+\.example\.com$`.
//! * **Complex** — ASN in the middle, an annotation other than `as`, an
//!   alternation before the ASN, or a convention needing multiple
//!   regexes.

use crate::convention::NamingConvention;
use crate::regex::{Elem, Regex};

/// Shape category of a naming convention (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Taxonomy {
    /// `^as(\d+)\.suffix$` and nothing else.
    Simple,
    /// `as`-annotated ASN at the hostname start.
    Start,
    /// `as`-annotated ASN at the hostname end.
    End,
    /// ASN without an alphabetic annotation, at the start or end.
    Bare,
    /// Everything else.
    Complex,
}

impl Taxonomy {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Taxonomy::Simple => "simple",
            Taxonomy::Start => "start",
            Taxonomy::End => "end",
            Taxonomy::Bare => "bare",
            Taxonomy::Complex => "complex",
        }
    }

    /// Inverse of [`Taxonomy::label`], for parsing serialized models.
    pub fn parse_label(s: &str) -> Option<Taxonomy> {
        match s {
            "simple" => Some(Taxonomy::Simple),
            "start" => Some(Taxonomy::Start),
            "end" => Some(Taxonomy::End),
            "bare" => Some(Taxonomy::Bare),
            "complex" => Some(Taxonomy::Complex),
            _ => None,
        }
    }
}

/// Classifies a convention into the Table 1 taxonomy.
pub fn taxonomy_of(nc: &NamingConvention) -> Taxonomy {
    match nc.regexes.as_slice() {
        [r] => taxonomy_of_regex(r, &nc.suffix),
        _ => Taxonomy::Complex,
    }
}

/// Classifies a single regex.
pub fn taxonomy_of_regex(r: &Regex, suffix: &str) -> Taxonomy {
    let elems = r.elems();
    let Some(ci) = r.capture_index() else { return Taxonomy::Complex };
    let before = &elems[..ci];
    let after = &elems[ci + 1..];

    let annotation = match before.last() {
        Some(Elem::Lit(l)) => trailing_alpha(l),
        _ => "",
    };
    // Capture at the very start of the hostname: only the anchor and the
    // (possibly empty) annotation literal precede it.
    let at_start =
        matches!(before, [Elem::StartAnchor] | [Elem::StartAnchor, Elem::Lit(_)]);
    // Capture immediately before the suffix: only `\.suffix$` follows.
    let suffix_lit = format!(".{suffix}");
    let at_end = matches!(after,
        [Elem::Lit(l), Elem::EndAnchor] if *l == suffix_lit);

    if annotation == "as" {
        let lit_is_exactly_as =
            matches!(before, [Elem::StartAnchor, Elem::Lit(l)] if l == "as");
        if at_start && at_end && lit_is_exactly_as {
            Taxonomy::Simple
        } else if at_start {
            Taxonomy::Start
        } else if at_end {
            Taxonomy::End
        } else {
            Taxonomy::Complex
        }
    } else if annotation.is_empty() {
        // No alphabetic annotation. Bare if positioned at an edge.
        let bare_start = matches!(before, [Elem::StartAnchor])
            || matches!(before, [Elem::StartAnchor, Elem::Lit(l)] if !ends_alpha(l));
        if bare_start || at_end {
            Taxonomy::Bare
        } else {
            Taxonomy::Complex
        }
    } else {
        Taxonomy::Complex
    }
}

/// The trailing run of ASCII letters in `s`.
fn trailing_alpha(s: &str) -> &str {
    let b = s.as_bytes();
    let mut i = b.len();
    while i > 0 && b[i - 1].is_ascii_lowercase() {
        i -= 1;
    }
    &s[i..]
}

fn ends_alpha(s: &str) -> bool {
    s.bytes().last().is_some_and(|b| b.is_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tax(rx: &str, suffix: &str) -> Taxonomy {
        taxonomy_of_regex(&Regex::parse(rx).unwrap(), suffix)
    }

    #[test]
    fn simple() {
        assert_eq!(tax(r"^as(\d+)\.example\.com$", "example.com"), Taxonomy::Simple);
    }

    #[test]
    fn start() {
        assert_eq!(
            tax(r"^as(\d+)\.[a-z]+\.example\.com$", "example.com"),
            Taxonomy::Start
        );
        // Literal context with punctuation before `as` still counts as an
        // `as` annotation at the hostname start.
        assert_eq!(
            tax(r"^gw-as(\d+)\.[a-z]+\.example\.com$", "example.com"),
            Taxonomy::Start
        );
    }

    #[test]
    fn end() {
        assert_eq!(
            tax(r"[a-z\d]+\.as(\d+)\.example\.com$", "example.com"),
            Taxonomy::End
        );
        assert_eq!(tax(r"as(\d+)\.nts\.ch$", "nts.ch"), Taxonomy::End);
        assert_eq!(
            tax(r"^[^\.]+\.as(\d+)\.example\.com$", "example.com"),
            Taxonomy::End
        );
    }

    #[test]
    fn bare() {
        assert_eq!(
            tax(r"^(\d+)\.[a-z]+\d+\.example\.com$", "example.com"),
            Taxonomy::Bare
        );
        // Bare at the end.
        assert_eq!(
            tax(r"^[^-]+-(\d+)\.example\.com$", "example.com"),
            Taxonomy::Bare
        );
    }

    #[test]
    fn complex_cases() {
        // ASN in the middle.
        assert_eq!(
            tax(r"^[a-z]+\.as(\d+)\.[a-z]+\.example\.com$", "example.com"),
            Taxonomy::Complex
        );
        // Annotation other than `as`.
        assert_eq!(tax(r"^p(\d+)\.[a-z]+\.example\.com$", "example.com"), Taxonomy::Complex);
        // Alternation before the capture.
        assert_eq!(
            tax(r"^(?:p|s)?(\d+)\.[a-z]+\.example\.com$", "example.com"),
            Taxonomy::Complex
        );
        // Bare but mid-hostname.
        assert_eq!(
            tax(r"^[a-z]+\.(\d+)\.[a-z]+\.example\.com$", "example.com"),
            Taxonomy::Complex
        );
    }

    #[test]
    fn multi_regex_convention_is_complex() {
        let nc = NamingConvention::new(
            "equinix.com",
            vec![
                Regex::parse(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$").unwrap(),
                Regex::parse(r"^(\d+)-.+\.equinix\.com$").unwrap(),
            ],
        );
        assert_eq!(taxonomy_of(&nc), Taxonomy::Complex);
    }

    #[test]
    fn single_regex_convention_delegates() {
        let nc = NamingConvention::new(
            "nts.ch",
            vec![Regex::parse(r"as(\d+)\.nts\.ch$").unwrap()],
        );
        assert_eq!(taxonomy_of(&nc), Taxonomy::End);
    }

    #[test]
    fn labels() {
        assert_eq!(Taxonomy::Simple.label(), "simple");
        assert_eq!(Taxonomy::Complex.label(), "complex");
    }

    #[test]
    fn parse_label_round_trips() {
        for t in [
            Taxonomy::Simple,
            Taxonomy::Start,
            Taxonomy::End,
            Taxonomy::Bare,
            Taxonomy::Complex,
        ] {
            assert_eq!(Taxonomy::parse_label(t.label()), Some(t));
        }
        assert_eq!(Taxonomy::parse_label("middle"), None);
    }
}
