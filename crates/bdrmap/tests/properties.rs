//! Property-based tests for router-ownership inference, on the devkit
//! harness: the router graph built from arbitrary traceroute corpora
//! keeps its structural invariants, and both inference methods are
//! total, deterministic, and evidence-grounded.

use hoiho_asdb::{As2Org, AsRelationships, IxpDirectory, Prefix, RouteTable};
use hoiho_bdrmap::graph::RouterGraph;
use hoiho_bdrmap::refine::{self, RefineConfig};
use hoiho_bdrmap::rtaa;
use hoiho_bdrmap::{InferenceInput, Trace};
use hoiho_devkit::prop::{any, vec_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};

/// Raw material for an [`InferenceInput`]: announced /16s, sibling
/// assignments, alias sets, and traceroute paths over a small address
/// pool so hops actually collide with routers and prefixes.
fn input() -> impl Gen<Value = InferenceInput> {
    let announce = vec_of((0u32..40, 1u32..30), 1..25usize);
    let pc = vec_of((1u32..30, 1u32..30), 0..15usize);
    let aliases = vec_of(vec_of(any::<u32>().prop_map(pool_addr), 0..4usize), 0..8usize);
    let traces = vec_of(
        (
            1u32..30,
            any::<u32>().prop_map(pool_addr),
            vec_of((any::<bool>(), any::<u32>()), 0..8usize),
        ),
        0..30usize,
    );
    (announce, pc, aliases, traces).prop_map(|(announce, pc, aliases, traces)| {
        let mut bgp = RouteTable::new();
        for (block, asn) in announce {
            // First origin per /16 wins; later duplicates are ignored
            // by construction order in RouteTable::insert semantics.
            let p = Prefix::new(block << 16, 16);
            if bgp.get(&p).is_none() {
                bgp.insert(p, asn);
            }
        }
        let mut rel = AsRelationships::new();
        for (p, c) in pc {
            if p != c {
                rel.add_provider_customer(p, c);
            }
        }
        let mut org = As2Org::new();
        for asn in 1..30u32 {
            org.assign(asn, asn / 3, "org");
        }
        let traces = traces
            .into_iter()
            .map(|(vp_asn, dst, hops)| Trace {
                vp_asn,
                dst,
                hops: hops
                    .into_iter()
                    .map(|(responsive, a)| responsive.then(|| pool_addr(a)))
                    .collect(),
            })
            .collect();
        InferenceInput { bgp, rel, org, ixps: IxpDirectory::new(), aliases, traces }
    })
}

/// Maps arbitrary entropy into a small address pool (40 /16 blocks ×
/// 64 hosts) so addresses repeat across traces and alias sets.
fn pool_addr(raw: u32) -> u32 {
    ((raw % 40) << 16) | (raw >> 16) % 64
}

props! {
    cases = 64;

    /// The router graph partitions its addresses: every mapped address
    /// belongs to exactly one router, and every responsive hop is
    /// mapped.
    fn graph_partitions_addresses(input in input()) {
        let g = RouterGraph::build(&input);
        let mut total = 0usize;
        for (idx, node) in g.routers.iter().enumerate() {
            for &a in &node.interfaces {
                prop_assert_eq!(g.by_addr.get(&a).copied(), Some(idx));
            }
            total += node.interfaces.len();
        }
        // Disjointness: the address map and the interface lists agree
        // in size, so no address sits on two routers.
        prop_assert_eq!(total, g.by_addr.len());
        for t in &input.traces {
            for h in t.hops.iter().flatten() {
                prop_assert!(g.by_addr.contains_key(h), "unmapped hop {h}");
            }
        }
        // Edges and annotations reference real routers.
        for node in &g.routers {
            for (&next, &count) in &node.next_routers {
                prop_assert!(next < g.len());
                prop_assert!(count >= 1);
            }
        }
    }

    /// Both inference methods are total (one verdict slot per router)
    /// and deterministic.
    fn inference_total_and_deterministic(input in input()) {
        let g = RouterGraph::build(&input);
        let r1 = rtaa::infer(&g, &input);
        let r2 = rtaa::infer(&g, &input);
        prop_assert_eq!(r1.len(), g.len());
        prop_assert_eq!(&r1, &r2);
        let b1 = refine::infer(&g, &input, &RefineConfig::default());
        let b2 = refine::infer(&g, &input, &RefineConfig::default());
        prop_assert_eq!(b1.len(), g.len());
        prop_assert_eq!(&b1, &b2);
    }

    /// An RTAA verdict is evidence-grounded: the elected AS originates
    /// at least one of the router's own interfaces, and a router none
    /// of whose interfaces resolve in BGP gets no verdict.
    fn rtaa_owner_is_an_interface_origin(input in input()) {
        let g = RouterGraph::build(&input);
        let owners = rtaa::infer(&g, &input);
        for (node, owner) in g.routers.iter().zip(&owners) {
            let origins: Vec<u32> = node
                .interfaces
                .iter()
                .filter_map(|&a| input.origin(a))
                .collect();
            match owner {
                Some(asn) => prop_assert!(
                    origins.contains(asn),
                    "owner {asn} not among interface origins {origins:?}"
                ),
                None => prop_assert!(origins.is_empty()),
            }
        }
    }
}
