//! bdrmapIT-style graph refinement (Marder et al. 2018).
//!
//! Starts from the election result and repairs the supplier bias using
//! the router graph's annotations:
//!
//! 1. **Subsequent vote.** A border router of AS *B* answers with an
//!    address the provider *A* supplied, but the routers *behind* it are
//!    *B*'s — their interface origins dominate the subsequent set. When
//!    the subsequent evidence is decisive, it overrides the election.
//! 2. **Customer correction.** When the election elects origin *o* but
//!    the subsequent set is led by a *customer* of *o*, the router sits
//!    on the far side of a provider-supplied link: assign the customer
//!    (bdrmap's core interdomain heuristic).
//! 3. **Destination fallback.** Routers with no subsequent evidence
//!    (trace edges) take the most common destination AS — stub border
//!    routers appear only on paths towards their own network.
//!
//! Refinement iterates to a fixpoint (bounded), mirroring MAP-IT's graph
//! refinement loop.

use crate::graph::{RouterGraph, RouterIdx};
use crate::{rtaa, InferenceInput};
use hoiho_asdb::Asn;

/// Tunables for refinement.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Maximum refinement sweeps.
    pub max_rounds: usize,
    /// Minimum observations before the subsequent vote may override the
    /// election.
    pub min_subsequent: u32,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { max_rounds: 4, min_subsequent: 1 }
    }
}

/// Runs bdrmapIT-style inference: election start plus refinement.
pub fn infer(graph: &RouterGraph, input: &InferenceInput, cfg: &RefineConfig) -> Vec<Option<Asn>> {
    let mut owner = rtaa::infer(graph, input);
    for _ in 0..cfg.max_rounds {
        let mut changed = false;
        for idx in 0..graph.len() {
            let new = refine_router(graph, input, idx, &owner, cfg);
            if new.is_some() && new != owner[idx] {
                owner[idx] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    owner
}

/// One refinement step for one router; `None` keeps the current value.
fn refine_router(
    graph: &RouterGraph,
    input: &InferenceInput,
    idx: RouterIdx,
    owner: &[Option<Asn>],
    cfg: &RefineConfig,
) -> Option<Asn> {
    let node = &graph.routers[idx];
    let election = owner[idx];

    // Primary signal: origins of next-hop interfaces. A customer border
    // answering with a provider-supplied address forwards into its own
    // network, so its subsequent origins name the customer; a provider
    // border forwards onto addresses it supplied itself, so its
    // subsequent origins name the provider. Either way the vote is the
    // operator.
    if let Some((best, cnt)) = top_vote(&node.subsequent) {
        if cnt >= cfg.min_subsequent {
            return Some(decide(input, election, best, &node.subsequent));
        }
    }

    // Secondary signal: owners of next-hop routers — needed when the
    // next-hop interfaces have no BGP origin (IXP LANs).
    let mut neighbor_votes: std::collections::BTreeMap<Asn, u32> = Default::default();
    for (&nr, &cnt) in &node.next_routers {
        if let Some(o) = owner[nr] {
            *neighbor_votes.entry(o).or_insert(0) += cnt;
        }
    }
    if let Some((best, _)) = top_vote(&neighbor_votes) {
        return Some(decide(input, election, best, &neighbor_votes));
    }

    // Destination fallback for evidence-free routers (stub borders,
    // last hops before silent destinations).
    if let Some((best, _)) = top_vote(&node.destinations) {
        return match election {
            Some(e) if e == best => Some(e),
            Some(e) if input.rel.is_provider_of(e, best) => Some(best),
            Some(e) if node.last_hop => Some(if e == best { e } else { best }),
            Some(e) => Some(e),
            None => Some(best),
        };
    }
    election
}

/// Highest-count ASN (smaller ASN on ties).
fn top_vote(votes: &std::collections::BTreeMap<Asn, u32>) -> Option<(Asn, u32)> {
    votes
        .iter()
        .max_by_key(|&(asn, c)| (*c, std::cmp::Reverse(*asn)))
        .map(|(&a, &c)| (a, c))
}

/// Chooses between the election and the evidence-vote winner.
fn decide(
    input: &InferenceInput,
    election: Option<Asn>,
    best: Asn,
    votes: &std::collections::BTreeMap<Asn, u32>,
) -> Asn {
    let Some(elected) = election else { return best };
    if best == elected {
        return elected;
    }
    // The elected AS supplied this router's observed addresses; if the
    // forward evidence names a network it serves (customer, peer, or
    // sibling), the router sits on the far side of the supplied link.
    let related = input.rel.relationship(elected, best).is_some()
        || input.org.siblings(elected, best);
    let best_cnt = votes.get(&best).copied().unwrap_or(0);
    let elected_cnt = votes.get(&elected).copied().unwrap_or(0);
    if related || best_cnt > elected_cnt {
        best
    } else {
        elected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;
    use hoiho_asdb::{Addr, As2Org, AsRelationships, IxpDirectory, Prefix, RouteTable};

    fn a(s: &str) -> Addr {
        hoiho_asdb::addr_parse(s).unwrap()
    }

    /// Provider AS100 (10/8) supplies the link to customer AS200 (20/8).
    /// The customer's border router answers with 10.0.9.1 (provider
    /// space); behind it sits 20.0.0.1 (customer space).
    fn supplier_bias_input() -> InferenceInput {
        let mut bgp = RouteTable::new();
        bgp.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 100);
        bgp.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 200);
        let mut rel = AsRelationships::new();
        rel.add_provider_customer(100, 200);
        InferenceInput {
            bgp,
            rel,
            org: As2Org::new(),
            ixps: IxpDirectory::new(),
            // The customer border router owns the supplied address and
            // an internal customer address.
            aliases: vec![vec![a("10.0.9.1"), a("20.0.0.254")]],
            traces: vec![Trace {
                vp_asn: 64500,
                dst: a("20.0.0.99"),
                hops: vec![
                    Some(a("10.0.0.1")),  // provider border
                    Some(a("10.0.9.1")),  // customer border (supplied addr)
                    Some(a("20.0.0.1")),  // customer internal
                    Some(a("20.0.0.99")), // destination
                ],
            }],
        }
    }

    #[test]
    fn election_shows_supplier_bias_for_singletons() {
        // A customer border observed only through its supplied address
        // elects the provider.
        let mut input = supplier_bias_input();
        input.aliases = vec![]; // no alias resolution: singleton routers
        let g = crate::graph::RouterGraph::build(&input);
        let ridx = g.by_addr[&a("10.0.9.1")];
        assert_eq!(rtaa::infer_router(&g, &input, ridx), Some(100));
    }

    #[test]
    fn refinement_fixes_supplier_bias() {
        let input = supplier_bias_input();
        let g = crate::graph::RouterGraph::build(&input);
        let owners = infer(&g, &input, &RefineConfig::default());
        let ridx = g.by_addr[&a("10.0.9.1")];
        assert_eq!(owners[ridx], Some(200), "customer border must go to the customer");
        // Provider border stays with the provider? Its subsequent set is
        // {100} (the supplied far-side address it forwards to), so yes.
        let pidx = g.by_addr[&a("10.0.0.1")];
        assert_eq!(owners[pidx], Some(100));
    }

    #[test]
    fn destination_fallback_for_last_hops() {
        // Trace that dies at the supplied address: no subsequent
        // evidence, destination says AS200.
        let mut input = supplier_bias_input();
        input.aliases = vec![];
        input.traces = vec![Trace {
            vp_asn: 64500,
            dst: a("20.0.0.99"),
            hops: vec![Some(a("10.0.0.1")), Some(a("10.0.9.1"))],
        }];
        let g = crate::graph::RouterGraph::build(&input);
        let owners = infer(&g, &input, &RefineConfig::default());
        let ridx = g.by_addr[&a("10.0.9.1")];
        assert_eq!(owners[ridx], Some(200));
    }

    #[test]
    fn refinement_converges() {
        let input = supplier_bias_input();
        let g = crate::graph::RouterGraph::build(&input);
        let a4 = infer(&g, &input, &RefineConfig { max_rounds: 4, ..Default::default() });
        let a9 = infer(&g, &input, &RefineConfig { max_rounds: 9, ..Default::default() });
        assert_eq!(a4, a9);
    }

    #[test]
    fn unrelated_strong_subsequent_overrides() {
        // Even without a relationship edge, a dominant subsequent vote
        // beats a zero-support election.
        let mut input = supplier_bias_input();
        input.rel = AsRelationships::new();
        let g = crate::graph::RouterGraph::build(&input);
        let owners = infer(&g, &input, &RefineConfig::default());
        let ridx = g.by_addr[&a("10.0.9.1")];
        // Subsequent = {200}; election chose 100 or 200 (count tie on
        // the alias set). Either way refinement must settle on 200.
        assert_eq!(owners[ridx], Some(200));
    }
}
