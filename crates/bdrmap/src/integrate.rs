//! §5: using extracted hostname ASNs inside bdrmapIT.
//!
//! Hostnames can be stale or typoed, and the heuristic inference can be
//! wrong — the paper's modification arbitrates between the two signals
//! topologically. An extracted ASN is *reasonable* for a router when it
//! matches, or is a sibling of, an ASN in the router's subsequent or
//! destination sets, or is a provider of one of those ASes. Reasonable
//! extractions replace the inferred owner; unreasonable ones are deemed
//! stale and the topological inference stands.

use crate::graph::{RouterGraph, RouterIdx};
use crate::InferenceInput;
use hoiho::classify::NcClass;
use hoiho::NamingConvention;
use hoiho_asdb::{Addr, Asn};
use std::collections::BTreeMap;

/// Learned conventions indexed by suffix, with their §4 class.
#[derive(Debug, Clone, Default)]
pub struct ConventionSet {
    by_suffix: BTreeMap<String, (NamingConvention, NcClass)>,
}

impl ConventionSet {
    /// Builds a set from conventions and their quality classes.
    pub fn new(items: impl IntoIterator<Item = (NamingConvention, NcClass)>) -> ConventionSet {
        let mut by_suffix = BTreeMap::new();
        for (nc, class) in items {
            by_suffix.insert(nc.suffix.clone(), (nc, class));
        }
        ConventionSet { by_suffix }
    }

    /// Number of conventions.
    pub fn len(&self) -> usize {
        self.by_suffix.len()
    }

    /// True when no conventions are loaded.
    pub fn is_empty(&self) -> bool {
        self.by_suffix.is_empty()
    }

    /// Extracts an ASN from `hostname` using the convention of its
    /// suffix (longest matching label suffix wins).
    pub fn extract(&self, hostname: &str) -> Option<(Asn, NcClass)> {
        let labels: Vec<&str> = hostname.split('.').collect();
        // Try the longest candidate suffix first.
        for start in 0..labels.len().saturating_sub(1) {
            let suffix = labels[start..].join(".");
            if let Some((nc, class)) = self.by_suffix.get(&suffix) {
                return nc.extract(hostname).map(|a| (a, *class));
            }
        }
        None
    }
}

/// One arbitration between a hostname and the heuristic inference.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Interface address.
    pub addr: Addr,
    /// Its hostname.
    pub hostname: String,
    /// The router holding the interface.
    pub router: RouterIdx,
    /// ASN extracted from the hostname.
    pub extracted: Asn,
    /// The inference before integration.
    pub initial: Option<Asn>,
    /// Quality class of the convention that extracted the ASN.
    pub class: NcClass,
    /// True when the extracted ASN passed the reasonableness test and
    /// was adopted.
    pub used: bool,
}

/// Outcome of integrating hostname evidence.
#[derive(Debug, Clone)]
pub struct IntegrationResult {
    /// Updated per-router owners.
    pub owners: Vec<Option<Asn>>,
    /// One row per interface whose extracted ASN differed from the
    /// initial inference.
    pub decisions: Vec<Decision>,
    /// Interfaces with hostnames that yielded an extracted ASN.
    pub annotated: usize,
    /// Of those, how many agreed with the initial inference (sibling
    /// matches count as agreement).
    pub agree_initial: usize,
    /// Agreement after integration.
    pub agree_final: usize,
}

impl IntegrationResult {
    /// Initial agreement rate over annotated interfaces.
    pub fn initial_rate(&self) -> f64 {
        rate(self.agree_initial, self.annotated)
    }

    /// Final agreement rate over annotated interfaces.
    pub fn final_rate(&self) -> f64 {
        rate(self.agree_final, self.annotated)
    }
}

fn rate(num: usize, denom: usize) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64
    }
}

/// The §5 reasonableness test.
pub fn reasonable(
    graph: &RouterGraph,
    input: &InferenceInput,
    router: RouterIdx,
    extracted: Asn,
) -> bool {
    for v in graph.evidence(router) {
        if v == extracted
            || input.org.siblings(extracted, v)
            || input.rel.is_provider_of(extracted, v)
        {
            return true;
        }
    }
    false
}

/// Integrates extracted ASNs into the inference. `hostnames` maps
/// interface addresses to PTR names; `owners` is the pre-integration
/// inference (e.g. from [`crate::refine::infer`]).
pub fn integrate(
    graph: &RouterGraph,
    input: &InferenceInput,
    owners: &[Option<Asn>],
    hostnames: &BTreeMap<Addr, String>,
    conventions: &ConventionSet,
) -> IntegrationResult {
    let mut out = IntegrationResult {
        owners: owners.to_vec(),
        decisions: Vec::new(),
        annotated: 0,
        agree_initial: 0,
        agree_final: 0,
    };
    let agrees = |a: Asn, b: Option<Asn>| -> bool {
        b.is_some_and(|b| a == b || input.org.siblings(a, b))
    };
    // Deterministic order: iterate the hostname table.
    for (&addr, hostname) in hostnames {
        let Some(&router) = graph.by_addr.get(&addr) else { continue };
        let Some((extracted, class)) = conventions.extract(hostname) else { continue };
        out.annotated += 1;
        let initial = owners[router];
        if agrees(extracted, initial) {
            out.agree_initial += 1;
            continue;
        }
        let used = reasonable(graph, input, router, extracted);
        if used {
            out.owners[router] = Some(extracted);
        }
        out.decisions.push(Decision {
            addr,
            hostname: hostname.clone(),
            router,
            extracted,
            initial,
            class,
            used,
        });
    }
    // Final agreement: recount against the updated owners.
    for (&addr, hostname) in hostnames {
        let Some(&router) = graph.by_addr.get(&addr) else { continue };
        let Some((extracted, _)) = conventions.extract(hostname) else { continue };
        if agrees(extracted, out.owners[router]) {
            out.agree_final += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RouterGraph;
    use crate::Trace;
    use hoiho::Regex;
    use hoiho_asdb::{As2Org, AsRelationships, IxpDirectory, Prefix, RouteTable};

    fn a(s: &str) -> Addr {
        hoiho_asdb::addr_parse(s).unwrap()
    }

    fn conventions() -> ConventionSet {
        let nc = NamingConvention::new(
            "prov.net",
            vec![Regex::parse(r"^as(\d+)\.[a-z\d-]+\.prov\.net$").unwrap()],
        );
        ConventionSet::new([(nc, NcClass::Good)])
    }

    /// AS100 (10/8) provides to AS200 (20/8) and AS300 (30/8, sibling of
    /// 200). Customer border answers with supplied 10.0.9.1.
    fn setup() -> (RouterGraph, InferenceInput) {
        let mut bgp = RouteTable::new();
        bgp.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 100);
        bgp.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 200);
        bgp.insert("30.0.0.0/8".parse::<Prefix>().unwrap(), 300);
        let mut rel = AsRelationships::new();
        rel.add_provider_customer(100, 200);
        rel.add_provider_customer(100, 300);
        let mut org = As2Org::new();
        org.assign(200, 1, "acme");
        org.assign(300, 1, "acme");
        let input = InferenceInput {
            bgp,
            rel,
            org,
            ixps: IxpDirectory::new(),
            aliases: vec![],
            traces: vec![Trace {
                vp_asn: 64500,
                dst: a("20.0.0.99"),
                hops: vec![
                    Some(a("10.0.0.1")),
                    Some(a("10.0.9.1")),
                    Some(a("20.0.0.1")),
                    Some(a("20.0.0.99")),
                ],
            }],
        };
        let graph = RouterGraph::build(&input);
        (graph, input)
    }

    #[test]
    fn convention_set_extraction() {
        let cs = conventions();
        assert_eq!(cs.extract("as200.lhr-3.prov.net"), Some((200, NcClass::Good)));
        assert_eq!(cs.extract("other.example.org"), None);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn correct_hostname_fixes_wrong_inference() {
        let (graph, input) = setup();
        let ridx = graph.by_addr[&a("10.0.9.1")];
        // Pretend the heuristic got it wrong (elected the supplier).
        let mut owners = vec![None; graph.len()];
        owners[ridx] = Some(100);
        let hostnames =
            BTreeMap::from([(a("10.0.9.1"), "as200.lhr-3.prov.net".to_string())]);
        let res = integrate(&graph, &input, &owners, &hostnames, &conventions());
        assert_eq!(res.annotated, 1);
        assert_eq!(res.agree_initial, 0);
        assert_eq!(res.agree_final, 1);
        assert_eq!(res.owners[ridx], Some(200));
        assert_eq!(res.decisions.len(), 1);
        assert!(res.decisions[0].used);
    }

    #[test]
    fn stale_hostname_rejected() {
        let (graph, input) = setup();
        let ridx = graph.by_addr[&a("10.0.9.1")];
        let mut owners = vec![None; graph.len()];
        owners[ridx] = Some(200);
        // Hostname names AS 999 — no topological support.
        let hostnames =
            BTreeMap::from([(a("10.0.9.1"), "as999.lhr-3.prov.net".to_string())]);
        let res = integrate(&graph, &input, &owners, &hostnames, &conventions());
        assert_eq!(res.owners[ridx], Some(200), "stale hostname must not be adopted");
        assert_eq!(res.decisions.len(), 1);
        assert!(!res.decisions[0].used);
        assert_eq!(res.agree_final, 0);
    }

    #[test]
    fn sibling_counts_as_agreement() {
        let (graph, input) = setup();
        let ridx = graph.by_addr[&a("10.0.9.1")];
        let mut owners = vec![None; graph.len()];
        owners[ridx] = Some(300); // sibling of 200
        let hostnames =
            BTreeMap::from([(a("10.0.9.1"), "as200.lhr-3.prov.net".to_string())]);
        let res = integrate(&graph, &input, &owners, &hostnames, &conventions());
        assert_eq!(res.agree_initial, 1);
        assert!(res.decisions.is_empty());
        assert_eq!(res.owners[ridx], Some(300), "sibling agreement leaves owner alone");
    }

    #[test]
    fn provider_of_evidence_is_reasonable() {
        let (graph, input) = setup();
        // Router 10.0.0.1's evidence includes 100 (subsequent) and 200
        // (destination). AS 100 is in evidence directly; a provider of
        // 200 is also reasonable.
        let ridx = graph.by_addr[&a("10.0.0.1")];
        assert!(reasonable(&graph, &input, ridx, 100));
        // 100 is a provider of 200 → also reasonable by the provider
        // rule even if not directly present.
        assert!(reasonable(&graph, &input, ridx, 200));
        assert!(!reasonable(&graph, &input, ridx, 999));
    }

    #[test]
    fn unknown_addresses_ignored() {
        let (graph, input) = setup();
        let owners = vec![None; graph.len()];
        let hostnames = BTreeMap::from([(a("99.9.9.9"), "as200.x-1.prov.net".to_string())]);
        let res = integrate(&graph, &input, &owners, &hostnames, &conventions());
        assert_eq!(res.annotated, 0);
        assert!(res.decisions.is_empty());
    }
}
