//! RouterToAsAssignment (Huffaker et al. 2010).
//!
//! The best-performing heuristic that work evaluated, used by the twelve
//! ITDKs between July 2010 and February 2017: assign each router the AS
//! that announced the longest matching prefix for the most of its
//! interfaces (*election*), breaking ties by choosing the AS with the
//! smaller relationship-graph degree (*degree*), then the smaller ASN.
//!
//! The method is systematically biased at interdomain boundaries: the
//! supplier announces the prefix covering a border interface, so border
//! routers of customer networks elect the provider (the paper's Figure 1
//! problem, and the reason its validation reported only 71–80% accuracy).

use crate::graph::{RouterGraph, RouterIdx};
use crate::InferenceInput;
use hoiho_asdb::Asn;
use std::collections::BTreeMap;

/// Ownership inferences per router, `None` when no interface had a BGP
/// origin.
pub fn infer(graph: &RouterGraph, input: &InferenceInput) -> Vec<Option<Asn>> {
    (0..graph.len()).map(|i| infer_router(graph, input, i)).collect()
}

/// The election + degree heuristic for one router.
pub fn infer_router(
    graph: &RouterGraph,
    input: &InferenceInput,
    idx: RouterIdx,
) -> Option<Asn> {
    let mut votes: BTreeMap<Asn, (u32, u8)> = BTreeMap::new(); // asn → (count, max plen)
    for &addr in &graph.routers[idx].interfaces {
        if let Some((prefix, &asn)) = input.bgp.lookup(addr) {
            let e = votes.entry(asn).or_insert((0, 0));
            e.0 += 1;
            e.1 = e.1.max(prefix.len());
        }
    }
    // Election: most interfaces; prefer longer matching prefixes on an
    // equal count; tie-break smaller degree, then smaller ASN.
    votes
        .into_iter()
        .max_by(|a, b| {
            (a.1 .0)
                .cmp(&b.1 .0)
                .then((a.1 .1).cmp(&b.1 .1))
                .then_with(|| input.rel.degree(b.0).cmp(&input.rel.degree(a.0)))
                .then(b.0.cmp(&a.0))
        })
        .map(|(asn, _)| asn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;
    use hoiho_asdb::{Addr, As2Org, AsRelationships, IxpDirectory, Prefix, RouteTable};

    fn a(s: &str) -> Addr {
        hoiho_asdb::addr_parse(s).unwrap()
    }

    fn base_input(aliases: Vec<Vec<Addr>>) -> InferenceInput {
        let mut bgp = RouteTable::new();
        bgp.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 100);
        bgp.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 200);
        bgp.insert("20.1.0.0/16".parse::<Prefix>().unwrap(), 250);
        let mut rel = AsRelationships::new();
        rel.add_provider_customer(100, 200); // degree(100)=1? plus below
        rel.add_provider_customer(100, 250);
        rel.add_provider_customer(100, 300);
        InferenceInput {
            bgp,
            rel,
            org: As2Org::new(),
            ixps: IxpDirectory::new(),
            aliases,
            traces: Vec::<Trace>::new(),
        }
    }

    fn graph_of(input: &InferenceInput) -> RouterGraph {
        RouterGraph::build(input)
    }

    #[test]
    fn majority_wins() {
        let input = base_input(vec![vec![a("10.0.0.1"), a("10.0.0.2"), a("20.0.0.1")]]);
        let g = graph_of(&input);
        assert_eq!(infer_router(&g, &input, 0), Some(100));
    }

    #[test]
    fn longest_prefix_breaks_count_tie() {
        // One interface in 10/8 (AS100), one in 20.1/16 (AS250): equal
        // counts, 250 announced the longer prefix.
        let input = base_input(vec![vec![a("10.0.0.1"), a("20.1.0.1")]]);
        let g = graph_of(&input);
        assert_eq!(infer_router(&g, &input, 0), Some(250));
    }

    #[test]
    fn degree_breaks_full_tie() {
        // Both /8s: AS100 has degree 3, AS200 degree 1 → choose 200.
        let input = base_input(vec![vec![a("10.0.0.1"), a("20.0.0.1")]]);
        let mut input = input;
        // Make prefix lengths equal by removing the /16 influence: the
        // two addresses match /8s of equal length already.
        input.bgp = {
            let mut t = RouteTable::new();
            t.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 100);
            t.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 200);
            t
        };
        let g = graph_of(&input);
        assert_eq!(infer_router(&g, &input, 0), Some(200));
    }

    #[test]
    fn smaller_asn_breaks_remaining_tie() {
        let mut input = base_input(vec![vec![a("10.0.0.1"), a("20.0.0.1")]]);
        input.rel = AsRelationships::new(); // equal (zero) degrees
        input.bgp = {
            let mut t = RouteTable::new();
            t.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 100);
            t.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 200);
            t
        };
        let g = graph_of(&input);
        assert_eq!(infer_router(&g, &input, 0), Some(100));
    }

    #[test]
    fn unrouted_router_uninferred() {
        let input = base_input(vec![vec![a("99.0.0.1")]]);
        let g = graph_of(&input);
        assert_eq!(infer_router(&g, &input, 0), None);
    }

    #[test]
    fn infer_covers_all_routers() {
        let input = base_input(vec![vec![a("10.0.0.1")], vec![a("20.0.0.1")]]);
        let g = graph_of(&input);
        let out = infer(&g, &input);
        assert_eq!(out, vec![Some(100), Some(200)]);
    }
}
