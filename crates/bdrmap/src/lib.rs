//! # hoiho-bdrmap — heuristic router ownership inference
//!
//! Reimplementations of the two heuristic methods the paper trains Hoiho
//! with, plus the paper's contribution #3 — the modification that feeds
//! extracted hostname ASNs back into inference:
//!
//! * [`rtaa`] — **RouterToAsAssignment** (Huffaker et al. 2010): per
//!   router, elect the AS announcing the longest matching prefix for the
//!   most interfaces, breaking ties with the smaller-degree AS. Used by
//!   the 2010–2017 ITDK snapshots.
//! * [`graph`] + [`refine`] — **bdrmapIT** (Marder et al. 2018): build a
//!   router graph from traceroutes, annotate each router with
//!   *subsequent* ASNs (origins of next-hop interfaces) and *destination*
//!   ASNs (origins of probed destinations), then iteratively refine
//!   ownership. Used by the 2017–2020 ITDKs.
//! * [`integrate`] — the §5 modification: accept an ASN extracted from a
//!   hostname when it matches (or is a sibling of) an ASN in the
//!   router's subsequent/destination sets, or is a provider of one —
//!   otherwise treat the hostname as stale and keep the topological
//!   inference.

pub mod graph;
pub mod integrate;
pub mod refine;
pub mod rtaa;

use hoiho_asdb::{Addr, As2Org, AsRelationships, Asn, IxpDirectory, RouteTable};

/// One traceroute path, as inference input.
#[derive(Debug, Clone)]
pub struct Trace {
    /// ASN hosting the vantage point.
    pub vp_asn: Asn,
    /// Destination address probed.
    pub dst: Addr,
    /// Hop responses; `None` is an unresponsive hop.
    pub hops: Vec<Option<Addr>>,
}

/// Everything the inference methods consume.
#[derive(Debug, Clone)]
pub struct InferenceInput {
    /// BGP table: prefix → origin ASN.
    pub bgp: RouteTable<Asn>,
    /// AS relationships.
    pub rel: AsRelationships,
    /// AS → organization (siblings).
    pub org: As2Org,
    /// IXP peering LANs.
    pub ixps: IxpDirectory,
    /// Alias sets from alias resolution; each inner vector is the
    /// interface addresses of one inferred router. Addresses observed in
    /// traces but absent here become singleton routers.
    pub aliases: Vec<Vec<Addr>>,
    /// The traceroute corpus.
    pub traces: Vec<Trace>,
}

impl InferenceInput {
    /// BGP origin of an address, if announced.
    pub fn origin(&self, addr: Addr) -> Option<Asn> {
        self.bgp.lookup_value(addr).copied()
    }
}
