//! Router graph construction from traceroutes.
//!
//! Groups observed addresses into routers using the alias sets, then
//! annotates each router the way bdrmapIT does (paper §5): *subsequent
//! ASNs* — the BGP origins of interfaces on adjacent next-hop routers —
//! and *destination ASNs* — the origins of the destinations whose traces
//! crossed the router. Interface origins are kept for the election
//! heuristic.

use crate::InferenceInput;
use hoiho_asdb::{Addr, Asn};
use std::collections::{BTreeMap, BTreeSet};

/// Dense router index in a [`RouterGraph`].
pub type RouterIdx = usize;

/// One router node with its topological annotations.
#[derive(Debug, Clone, Default)]
pub struct RouterNode {
    /// Interface addresses grouped into this router.
    pub interfaces: Vec<Addr>,
    /// BGP origins of next-hop interfaces, with observation counts.
    pub subsequent: BTreeMap<Asn, u32>,
    /// Origins of traceroute destinations whose paths crossed this
    /// router (the router itself excluded when it terminates the trace
    /// at the destination).
    pub destinations: BTreeMap<Asn, u32>,
    /// Next-hop router indices with observation counts.
    pub next_routers: BTreeMap<RouterIdx, u32>,
    /// True when some trace ended (last responsive hop) at this router
    /// without reaching the destination.
    pub last_hop: bool,
}

/// The assembled router graph.
#[derive(Debug, Clone, Default)]
pub struct RouterGraph {
    /// Router nodes.
    pub routers: Vec<RouterNode>,
    /// Address → router index.
    pub by_addr: BTreeMap<Addr, RouterIdx>,
}

impl RouterGraph {
    /// Builds the graph from inference input.
    pub fn build(input: &InferenceInput) -> RouterGraph {
        let mut g = RouterGraph::default();

        // Seed routers from alias sets.
        for set in &input.aliases {
            if set.is_empty() {
                continue;
            }
            let idx = g.routers.len();
            let mut node = RouterNode::default();
            for &a in set {
                // First alias set naming an address wins; alias sets are
                // expected to be disjoint.
                if g.by_addr.insert(a, idx).is_none() {
                    node.interfaces.push(a);
                }
            }
            g.routers.push(node);
        }

        // Walk traces: create singleton routers for unknown addresses,
        // accumulate annotations.
        for trace in &input.traces {
            let dst_origin = input.origin(trace.dst);
            // Indices of responsive hops.
            let hops: Vec<(usize, Addr)> = trace
                .hops
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.map(|a| (i, a)))
                .collect();
            let mut prev: Option<(usize, RouterIdx)> = None;
            let reached = hops.last().is_some_and(|&(_, a)| a == trace.dst);
            let mut dest_marked: BTreeSet<RouterIdx> = BTreeSet::new();
            for &(pos, addr) in &hops {
                let idx = g.router_for(addr);
                // Destination annotation: every router on the way to the
                // destination learns the destination origin once per
                // trace, except the destination's own responding node.
                if let Some(d) = dst_origin {
                    if addr != trace.dst && dest_marked.insert(idx) {
                        *g.routers[idx].destinations.entry(d).or_insert(0) += 1;
                    }
                }
                if let Some((ppos, pidx)) = prev {
                    // Only adjacent responsive hops form edges: a gap
                    // (unresponsive hop) hides the true adjacency.
                    if pos == ppos + 1 && pidx != idx {
                        let origin = input.origin(addr);
                        if let Some(o) = origin {
                            *g.routers[pidx].subsequent.entry(o).or_insert(0) += 1;
                        }
                        *g.routers[pidx].next_routers.entry(idx).or_insert(0) += 1;
                    }
                }
                prev = Some((pos, idx));
            }
            if !reached {
                if let Some((_, idx)) = prev {
                    g.routers[idx].last_hop = true;
                }
            }
        }
        g
    }

    /// Router index for an address, creating a singleton router if the
    /// address was not in any alias set.
    fn router_for(&mut self, addr: Addr) -> RouterIdx {
        if let Some(&i) = self.by_addr.get(&addr) {
            return i;
        }
        let idx = self.routers.len();
        self.routers.push(RouterNode { interfaces: vec![addr], ..RouterNode::default() });
        self.by_addr.insert(addr, idx);
        idx
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// True when the graph has no routers.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// The set of ASNs in a router's subsequent ∪ destination
    /// annotations — the evidence pool for the §5 reasonableness test.
    pub fn evidence(&self, idx: RouterIdx) -> BTreeSet<Asn> {
        let r = &self.routers[idx];
        r.subsequent.keys().chain(r.destinations.keys()).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;
    use hoiho_asdb::{As2Org, AsRelationships, IxpDirectory, Prefix, RouteTable};

    /// A 3-AS chain: VP in 100 → 200 → 300. Addresses: 10.x for AS100,
    /// 20.x for AS200, 30.x for AS300.
    fn input() -> InferenceInput {
        let mut bgp = RouteTable::new();
        bgp.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 100);
        bgp.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 200);
        bgp.insert("30.0.0.0/8".parse::<Prefix>().unwrap(), 300);
        InferenceInput {
            bgp,
            rel: AsRelationships::new(),
            org: As2Org::new(),
            ixps: IxpDirectory::new(),
            aliases: vec![vec![a("20.0.0.1"), a("20.0.0.9")]],
            traces: vec![
                Trace {
                    vp_asn: 100,
                    dst: a("30.0.0.99"),
                    hops: vec![
                        Some(a("10.0.0.1")),
                        Some(a("20.0.0.1")),
                        Some(a("20.0.0.9")),
                        Some(a("30.0.0.1")),
                        Some(a("30.0.0.99")),
                    ],
                },
                Trace {
                    vp_asn: 100,
                    dst: a("30.0.0.99"),
                    hops: vec![Some(a("10.0.0.1")), None, Some(a("20.0.0.9"))],
                },
            ],
        }
    }

    fn a(s: &str) -> Addr {
        hoiho_asdb::addr_parse(s).unwrap()
    }

    #[test]
    fn aliases_group_and_singletons_created() {
        let g = RouterGraph::build(&input());
        // Routers: alias set {20.0.0.1, 20.0.0.9}, singletons 10.0.0.1,
        // 30.0.0.1, 30.0.0.99.
        assert_eq!(g.len(), 4);
        assert_eq!(g.by_addr[&a("20.0.0.1")], g.by_addr[&a("20.0.0.9")]);
        assert_ne!(g.by_addr[&a("10.0.0.1")], g.by_addr[&a("30.0.0.1")]);
    }

    #[test]
    fn subsequent_annotations() {
        let g = RouterGraph::build(&input());
        let r10 = &g.routers[g.by_addr[&a("10.0.0.1")]];
        assert_eq!(r10.subsequent.get(&200), Some(&1));
        let r20 = &g.routers[g.by_addr[&a("20.0.0.1")]];
        // 20.0.0.1 → 20.0.0.9 is the same router: no self edge. The
        // router's next hop is 30.0.0.1 (origin 300), and 30.0.0.99.
        assert_eq!(r20.subsequent.get(&300), Some(&1));
        assert!(!r20.next_routers.is_empty());
    }

    #[test]
    fn unresponsive_gap_breaks_adjacency() {
        let g = RouterGraph::build(&input());
        let r10 = &g.routers[g.by_addr[&a("10.0.0.1")]];
        // The gapped second trace must not add 20.0.0.9 as subsequent:
        // subsequent count for 200 stays at 1 (from the first trace).
        assert_eq!(r10.subsequent.get(&200), Some(&1));
    }

    #[test]
    fn destination_annotations() {
        let g = RouterGraph::build(&input());
        let r20 = &g.routers[g.by_addr[&a("20.0.0.1")]];
        assert_eq!(r20.destinations.get(&300), Some(&2));
        // The destination's own responding node gets no dest annotation.
        let rdst = &g.routers[g.by_addr[&a("30.0.0.99")]];
        assert!(rdst.destinations.is_empty());
    }

    #[test]
    fn last_hop_flag() {
        let g = RouterGraph::build(&input());
        // Second trace ended at 20.0.0.9 without reaching the dst.
        let r20 = &g.routers[g.by_addr[&a("20.0.0.9")]];
        assert!(r20.last_hop);
        let r10 = &g.routers[g.by_addr[&a("10.0.0.1")]];
        assert!(!r10.last_hop);
    }

    #[test]
    fn evidence_pool() {
        let g = RouterGraph::build(&input());
        let idx = g.by_addr[&a("20.0.0.1")];
        let ev = g.evidence(idx);
        assert!(ev.contains(&300));
    }

    #[test]
    fn empty_input() {
        let mut i = input();
        i.traces.clear();
        i.aliases.clear();
        let g = RouterGraph::build(&i);
        assert!(g.is_empty());
    }
}
