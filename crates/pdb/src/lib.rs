//! # hoiho-pdb — PeeringDB-style snapshots
//!
//! PeeringDB's `netixlan` records map an IXP LAN address to the ASN of
//! the member using it, recorded by the member's own operators. The
//! paper uses two PeeringDB snapshots as training data (§4: PPV 96.0%,
//! the most accurate training source) and as cross-validation ground
//! truth for Table 2.
//!
//! [`synthesize`] derives a snapshot from the synthetic Internet's IXP
//! ports. Operator-recorded data is imperfect in a specific way the
//! paper highlights: organizations sometimes register their *main* ASN
//! while the IXP hostname embeds a *sibling* (Microsoft AS8075 vs
//! AS8069), and a few records go stale. Both error modes are injected at
//! configurable rates, with ground truth kept alongside.

use hoiho_asdb::{Addr, Asn};
use hoiho_netsim::internet::IfaceKind;
use hoiho_netsim::Internet;
use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// One `netixlan`-style record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetIxLan {
    /// The member ASN as recorded by the operator.
    pub recorded_asn: Asn,
    /// The LAN address.
    pub addr: Addr,
    /// IXP id in the directory.
    pub ixp: u32,
    /// Ground truth: the ASN actually operating the port's router.
    pub true_asn: Asn,
}

impl NetIxLan {
    /// True when the record is accurate.
    pub fn correct(&self) -> bool {
        self.recorded_asn == self.true_asn
    }
}

/// Error-injection knobs for synthesis.
#[derive(Debug, Clone, Copy)]
pub struct PdbConfig {
    /// RNG seed.
    pub seed: u64,
    /// Probability a record lists a sibling of the true ASN.
    pub sibling_rate: f64,
    /// Probability a record is stale (lists an unrelated ASN).
    pub stale_rate: f64,
}

impl Default for PdbConfig {
    fn default() -> Self {
        PdbConfig { seed: 0x9D8, sibling_rate: 0.02, stale_rate: 0.015 }
    }
}

/// A synthesized PeeringDB snapshot.
#[derive(Debug, Clone, Default)]
pub struct PeeringDbSnapshot {
    /// All records, sorted by address.
    pub records: Vec<NetIxLan>,
}

impl PeeringDbSnapshot {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for an address.
    pub fn by_addr(&self, addr: Addr) -> Option<&NetIxLan> {
        self.records.iter().find(|r| r.addr == addr)
    }

    /// Renders the snapshot as `asn|addr|ixp` lines (ground truth
    /// omitted, as in real exports).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(
                out,
                "{}|{}|{}",
                r.recorded_asn,
                hoiho_asdb::addr_to_string(r.addr),
                r.ixp
            );
        }
        out
    }
}

/// Builds a PeeringDB snapshot from the Internet's IXP ports.
pub fn synthesize(net: &Internet, cfg: &PdbConfig) -> PeeringDbSnapshot {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ net.cfg.seed);
    let mut records = Vec::new();
    for iface in &net.interfaces {
        if iface.kind != IfaceKind::IxpLan {
            continue;
        }
        let Some(ixp) = net.aslevel.ixps.ixp_for_addr(iface.addr) else { continue };
        let true_asn = net.routers[iface.router as usize].owner;
        let recorded_asn = if rng.random_bool(cfg.sibling_rate) {
            // The org records its main ASN; pick another sibling when
            // one exists.
            let sibs = net.aslevel.org.sibling_set(true_asn);
            sibs.iter().copied().find(|&s| s != true_asn).unwrap_or(true_asn)
        } else if rng.random_bool(cfg.stale_rate) {
            // Stale record: a previous occupant of the port.
            net.aslevel.ases[rng.random_range(0..net.aslevel.ases.len())].asn
        } else {
            true_asn
        };
        records.push(NetIxLan { recorded_asn, addr: iface.addr, ixp: ixp.id, true_asn });
    }
    records.sort_by_key(|r| r.addr);
    PeeringDbSnapshot { records }
}

/// Builds Hoiho training observations from a snapshot: each record with
/// a hostname on its address becomes (hostname, addr, recorded ASN).
pub fn training_observations(
    net: &Internet,
    snap: &PeeringDbSnapshot,
) -> Vec<hoiho::training::Observation> {
    let mut out = Vec::new();
    for r in &snap.records {
        let Some(iface) = net.iface_at(r.addr) else { continue };
        let Some(hostname) = iface.hostname.as_deref() else { continue };
        out.push(hoiho::training::Observation::new(
            hostname,
            hoiho_asdb::addr_octets(r.addr),
            r.recorded_asn,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho_netsim::SimConfig;

    fn net() -> Internet {
        Internet::generate(&SimConfig::tiny(41))
    }

    #[test]
    fn records_cover_ixp_ports() {
        let n = net();
        let snap = synthesize(&n, &PdbConfig::default());
        let ports = n
            .interfaces
            .iter()
            .filter(|i| i.kind == IfaceKind::IxpLan)
            .count();
        assert_eq!(snap.len(), ports);
        assert!(!snap.is_empty());
    }

    #[test]
    fn records_mostly_correct() {
        let n = net();
        let snap = synthesize(&n, &PdbConfig::default());
        let correct = snap.records.iter().filter(|r| r.correct()).count();
        assert!(correct as f64 / snap.len() as f64 > 0.9);
    }

    #[test]
    fn error_injection_scales() {
        let n = net();
        let noisy = synthesize(
            &n,
            &PdbConfig { sibling_rate: 0.0, stale_rate: 0.9, ..Default::default() },
        );
        let wrong = noisy.records.iter().filter(|r| !r.correct()).count();
        assert!(wrong as f64 / noisy.len() as f64 > 0.5);
    }

    #[test]
    fn deterministic() {
        let n = net();
        let a = synthesize(&n, &PdbConfig::default());
        let b = synthesize(&n, &PdbConfig::default());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn text_rendering() {
        let n = net();
        let snap = synthesize(&n, &PdbConfig::default());
        let text = snap.to_text();
        assert_eq!(text.lines().count(), snap.len());
        assert!(text.lines().all(|l| l.split('|').count() == 3));
    }

    #[test]
    fn training_observations_have_hostnames() {
        let n = net();
        let snap = synthesize(&n, &PdbConfig::default());
        let obs = training_observations(&n, &snap);
        assert!(!obs.is_empty());
        for o in &obs {
            assert!(o.hostname.contains('.'));
        }
        // Observations only exist for named ports, so no more than
        // records.
        assert!(obs.len() <= snap.len());
    }

    #[test]
    fn by_addr_lookup() {
        let n = net();
        let snap = synthesize(&n, &PdbConfig::default());
        let first = snap.records[0].clone();
        assert_eq!(snap.by_addr(first.addr), Some(&first));
        assert_eq!(snap.by_addr(0xFFFF_FFFF), None);
    }
}
