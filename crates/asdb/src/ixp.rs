//! IXP directory: peering LANs and members.
//!
//! Internet Exchange Points connect many ASes over a shared LAN whose
//! prefix is originated (if at all) by the IXP's own ASN, not by the
//! members using the addresses — exactly the situation where hostnames
//! carry the only reliable ownership signal, and where PeeringDB records
//! operator ground truth (paper §4–§5).

use crate::prefix::Prefix;
use crate::{Addr, Asn};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One IXP: its peering LAN prefix and member ASNs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ixp {
    /// Dense identifier within the directory.
    pub id: u32,
    /// Display name, e.g. `AKL-IX`.
    pub name: String,
    /// The peering LAN prefix.
    pub lan: Prefix,
    /// Member ASNs, sorted.
    pub members: Vec<Asn>,
}

/// A collection of IXPs with prefix lookup.
#[derive(Debug, Clone, Default)]
pub struct IxpDirectory {
    ixps: Vec<Ixp>,
}

impl IxpDirectory {
    /// Creates an empty directory.
    pub fn new() -> IxpDirectory {
        IxpDirectory::default()
    }

    /// Adds an IXP, returning its id.
    pub fn add(&mut self, name: &str, lan: Prefix, members: &[Asn]) -> u32 {
        let id = self.ixps.len() as u32;
        let mut members: Vec<Asn> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        self.ixps.push(Ixp { id, name: name.to_string(), lan, members });
        id
    }

    /// All IXPs.
    pub fn ixps(&self) -> &[Ixp] {
        &self.ixps
    }

    /// Number of IXPs.
    pub fn len(&self) -> usize {
        self.ixps.len()
    }

    /// True when the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.ixps.is_empty()
    }

    /// The IXP whose LAN contains `addr`, if any.
    pub fn ixp_for_addr(&self, addr: Addr) -> Option<&Ixp> {
        self.ixps.iter().find(|x| x.lan.contains(addr))
    }

    /// True if `addr` is on any IXP LAN.
    pub fn is_ixp_addr(&self, addr: Addr) -> bool {
        self.ixp_for_addr(addr).is_some()
    }

    /// All member ASNs across every IXP.
    pub fn all_members(&self) -> BTreeSet<Asn> {
        self.ixps.iter().flat_map(|x| x.members.iter().copied()).collect()
    }

    /// Parses the text format `name|prefix|asn,asn,...`.
    pub fn parse(text: &str) -> Result<IxpDirectory, String> {
        let mut out = IxpDirectory::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            let mut parts = line.splitn(3, '|');
            let name = parts.next().ok_or_else(|| err("missing name"))?;
            let lan: Prefix = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad prefix"))?;
            let members_str = parts.next().unwrap_or("");
            let mut members = Vec::new();
            for m in members_str.split(',').filter(|s| !s.is_empty()) {
                members.push(m.parse::<Asn>().map_err(|_| err("bad member ASN"))?);
            }
            out.add(name, lan, &members);
        }
        Ok(out)
    }

    /// Renders the directory in the `name|prefix|members` format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for x in &self.ixps {
            let members: Vec<String> = x.members.iter().map(|m| m.to_string()).collect();
            let _ = writeln!(out, "{}|{}|{}", x.name, x.lan, members.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr_parse;

    fn dir() -> IxpDirectory {
        let mut d = IxpDirectory::new();
        d.add("AKL-IX", "203.0.113.0/24".parse().unwrap(), &[24940, 9500, 681]);
        d.add("SWISS-IX", "198.51.100.0/25".parse().unwrap(), &[205073, 3356]);
        d
    }

    #[test]
    fn lookup_by_addr() {
        let d = dir();
        let ix = d.ixp_for_addr(addr_parse("203.0.113.7").unwrap()).unwrap();
        assert_eq!(ix.name, "AKL-IX");
        assert_eq!(ix.members, vec![681, 9500, 24940]);
        assert!(d.is_ixp_addr(addr_parse("198.51.100.1").unwrap()));
        assert!(!d.is_ixp_addr(addr_parse("198.51.100.200").unwrap()));
        assert!(!d.is_ixp_addr(addr_parse("8.8.8.8").unwrap()));
    }

    #[test]
    fn members_aggregate() {
        let d = dir();
        assert_eq!(d.all_members(), BTreeSet::from([681, 3356, 9500, 24940, 205073]));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let d = dir();
        let text = d.to_text();
        let d2 = IxpDirectory::parse(&text).unwrap();
        assert_eq!(d2.to_text(), text);
        assert_eq!(d2.ixps().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(IxpDirectory::parse("name|bad|1").is_err());
        assert!(IxpDirectory::parse("name|10.0.0.0/8|x").is_err());
        let d = IxpDirectory::parse("lonely|10.0.0.0/24|\n").unwrap();
        assert!(d.ixps()[0].members.is_empty());
    }

    #[test]
    fn dedup_members() {
        let mut d = IxpDirectory::new();
        d.add("X", "10.0.0.0/24".parse().unwrap(), &[5, 5, 1]);
        assert_eq!(d.ixps()[0].members, vec![1, 5]);
    }
}
