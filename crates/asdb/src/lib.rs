//! # hoiho-asdb — AS-level databases
//!
//! The substrate databases every router-ownership method in the paper
//! consumes:
//!
//! * [`prefix`] — IPv4 prefixes and parsing.
//! * [`trie`] — a binary trie for longest-prefix-match lookups, the BGP
//!   `prefix → origin AS` table.
//! * [`rel`] — AS relationships (provider/customer and peer, CAIDA
//!   `as-rel` style), with degree and relationship queries used by the
//!   election heuristics and by the §5 reasonableness test.
//! * [`org`] — AS-to-organization mapping, giving the *sibling* relation
//!   (two ASNs run by one organization, e.g. Microsoft's AS8075/AS8069).
//! * [`ixp`] — IXP directory: peering LAN prefixes and member ASNs.
//!
//! All tables parse and render line-based text formats modelled on the
//! CAIDA datasets the paper uses, so snapshots can be stored alongside
//! experiments.

pub mod ixp;
pub mod org;
pub mod prefix;
pub mod rel;
pub mod trie;

pub use ixp::IxpDirectory;
pub use org::As2Org;
pub use prefix::Prefix;
pub use rel::{AsRelationships, Relationship};
pub use trie::RouteTable;

/// An Autonomous System Number. 32-bit per RFC 6793.
pub type Asn = u32;

/// An IPv4 address in host byte order.
pub type Addr = u32;

/// Converts octets to an [`Addr`].
pub fn addr_from_octets(o: [u8; 4]) -> Addr {
    u32::from_be_bytes(o)
}

/// Converts an [`Addr`] to octets.
pub fn addr_octets(a: Addr) -> [u8; 4] {
    a.to_be_bytes()
}

/// Renders an [`Addr`] in dotted-quad form.
pub fn addr_to_string(a: Addr) -> String {
    let o = addr_octets(a);
    format!("{}.{}.{}.{}", o[0], o[1], o[2], o[3])
}

/// Parses dotted-quad form into an [`Addr`].
pub fn addr_parse(s: &str) -> Option<Addr> {
    let mut it = s.split('.');
    let mut out = [0u8; 4];
    for slot in out.iter_mut() {
        let part = it.next()?;
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        *slot = part.parse().ok()?;
    }
    if it.next().is_some() {
        return None;
    }
    Some(addr_from_octets(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        for s in ["0.0.0.0", "192.0.2.1", "255.255.255.255", "10.0.0.1"] {
            assert_eq!(addr_to_string(addr_parse(s).unwrap()), s);
        }
        assert_eq!(addr_parse("192.0.2"), None);
        assert_eq!(addr_parse("192.0.2.256"), None);
        assert_eq!(addr_parse("1.2.3.4.5"), None);
    }

    #[test]
    fn octet_order() {
        assert_eq!(addr_from_octets([192, 0, 2, 1]), 0xC0000201);
        assert_eq!(addr_octets(0xC0000201), [192, 0, 2, 1]);
    }
}
