//! Longest-prefix-match routing table.
//!
//! A binary trie keyed on prefix bits, generic in the stored value; the
//! BGP table used throughout this reproduction is `RouteTable<Asn>`.
//! Nodes are arena-allocated (indices, not boxes) so the structure is
//! cache-friendly and trivially clonable.

use crate::prefix::Prefix;
use crate::Addr;

/// Arena index of a trie node; `NONE` marks an absent child.
type NodeIdx = u32;
const NONE: NodeIdx = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    children: [NodeIdx; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Node<V> {
        Node { children: [NONE, NONE], value: None }
    }
}

/// A longest-prefix-match table from [`Prefix`] to `V`.
#[derive(Debug, Clone)]
pub struct RouteTable<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for RouteTable<V> {
    fn default() -> Self {
        RouteTable { nodes: vec![Node::new()], len: 0 }
    }
}

impl<V> RouteTable<V> {
    /// Creates an empty table.
    pub fn new() -> RouteTable<V> {
        RouteTable::default()
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `prefix → value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut idx: usize = 0;
        for depth in 0..prefix.len() {
            let bit = bit_at(prefix.addr(), depth);
            let child = self.nodes[idx].children[bit];
            idx = if child == NONE {
                self.nodes.push(Node::new());
                let new = (self.nodes.len() - 1) as NodeIdx;
                self.nodes[idx].children[bit] = new;
                new as usize
            } else {
                child as usize
            };
        }
        let prev = self.nodes[idx].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut idx: usize = 0;
        for depth in 0..prefix.len() {
            let bit = bit_at(prefix.addr(), depth);
            let child = self.nodes[idx].children[bit];
            if child == NONE {
                return None;
            }
            idx = child as usize;
        }
        self.nodes[idx].value.as_ref()
    }

    /// Longest-prefix match for `addr`: the value and matched prefix of
    /// the most specific covering entry.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, &V)> {
        let mut idx: usize = 0;
        let mut best: Option<(u8, &V)> = self.nodes[0].value.as_ref().map(|v| (0u8, v));
        for depth in 0..32u8 {
            let bit = bit_at(addr, depth);
            let child = self.nodes[idx].children[bit];
            if child == NONE {
                break;
            }
            idx = child as usize;
            if let Some(v) = self.nodes[idx].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Prefix::new(addr, len), v))
    }

    /// The value of the longest matching prefix, if any.
    pub fn lookup_value(&self, addr: Addr) -> Option<&V> {
        self.lookup(addr).map(|(_, v)| v)
    }

    /// Iterates over all `(prefix, value)` entries in lexicographic bit
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out: Vec<(Prefix, &V)> = Vec::with_capacity(self.len);
        // Depth-first walk, low child first: (node, addr bits so far, len).
        let mut stack: Vec<(usize, Addr, u8)> = vec![(0, 0, 0)];
        while let Some((idx, addr, len)) = stack.pop() {
            let node = &self.nodes[idx];
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::new(addr, len), v));
            }
            // Push high child first so the low child pops first.
            if node.children[1] != NONE {
                let bit = 1u32 << (31 - u32::from(len));
                stack.push((node.children[1] as usize, addr | bit, len + 1));
            }
            if node.children[0] != NONE {
                stack.push((node.children[0] as usize, addr, len + 1));
            }
        }
        out.into_iter()
    }
}

impl<V> FromIterator<(Prefix, V)> for RouteTable<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> Self {
        let mut t = RouteTable::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

/// Bit `depth` of `addr`, counting from the most significant bit.
fn bit_at(addr: Addr, depth: u8) -> usize {
    ((addr >> (31 - u32::from(depth))) & 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr_parse;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        addr_parse(s).unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let t: RouteTable<u32> = [
            (p("10.0.0.0/8"), 100),
            (p("10.1.0.0/16"), 200),
            (p("10.1.2.0/24"), 300),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.lookup_value(a("10.1.2.3")), Some(&300));
        assert_eq!(t.lookup_value(a("10.1.3.1")), Some(&200));
        assert_eq!(t.lookup_value(a("10.2.0.1")), Some(&100));
        assert_eq!(t.lookup_value(a("11.0.0.1")), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn matched_prefix_reported() {
        let mut t = RouteTable::new();
        t.insert(p("192.0.2.0/24"), 7u32);
        let (pre, v) = t.lookup(a("192.0.2.9")).unwrap();
        assert_eq!(pre, p("192.0.2.0/24"));
        assert_eq!(*v, 7);
    }

    #[test]
    fn default_route() {
        let mut t = RouteTable::new();
        t.insert(p("0.0.0.0/0"), 1u32);
        t.insert(p("10.0.0.0/8"), 2u32);
        assert_eq!(t.lookup_value(a("8.8.8.8")), Some(&1));
        assert_eq!(t.lookup_value(a("10.0.0.1")), Some(&2));
    }

    #[test]
    fn insert_replaces() {
        let mut t = RouteTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1u32), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2u32), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
    }

    #[test]
    fn host_routes() {
        let mut t = RouteTable::new();
        t.insert(p("1.2.3.4/32"), 9u32);
        assert_eq!(t.lookup_value(a("1.2.3.4")), Some(&9));
        assert_eq!(t.lookup_value(a("1.2.3.5")), None);
    }

    #[test]
    fn iteration_in_order() {
        let t: RouteTable<u32> = [
            (p("10.1.0.0/16"), 2),
            (p("10.0.0.0/8"), 1),
            (p("192.0.2.0/24"), 3),
            (p("0.0.0.0/0"), 0),
        ]
        .into_iter()
        .collect();
        let got: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(got, vec!["0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24"]);
    }

    #[test]
    fn lpm_agrees_with_linear_scan() {
        // Deterministic pseudo-random prefixes; cross-check the trie
        // against a naive scan.
        let mut seed = 0x12345678u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut t = RouteTable::new();
        let mut list: Vec<(Prefix, u32)> = Vec::new();
        for i in 0..500u32 {
            let len = (rnd() % 25 + 8) as u8;
            let pre = Prefix::new(rnd(), len);
            // Keep first value on duplicates to mirror the scan's order.
            if t.get(&pre).is_none() {
                t.insert(pre, i);
                list.push((pre, i));
            }
        }
        for _ in 0..2000 {
            let addr = rnd();
            let expect = list
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|&(_, v)| v);
            assert_eq!(t.lookup_value(addr).copied(), expect);
        }
    }
}
