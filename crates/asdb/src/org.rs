//! AS-to-organization mapping and the sibling relation.
//!
//! Two ASNs are *siblings* when one organization operates both (CAIDA's
//! as2org dataset). The paper uses siblings twice: §4 measures how much
//! PPV improves when sibling matches count as agreement, and §5 accepts
//! an extracted ASN that is a sibling of a topologically-supported ASN
//! (e.g. a hostname embedding Microsoft AS8069 while PeeringDB records
//! AS8075).

use crate::Asn;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An organization identifier (dense index into the org table).
pub type OrgId = u32;

/// AS → organization mapping.
#[derive(Debug, Clone, Default)]
pub struct As2Org {
    org_of: BTreeMap<Asn, OrgId>,
    members: BTreeMap<OrgId, Vec<Asn>>,
    names: BTreeMap<OrgId, String>,
}

impl As2Org {
    /// Creates an empty mapping.
    pub fn new() -> As2Org {
        As2Org::default()
    }

    /// Assigns `asn` to organization `org` (with an optional name kept
    /// for the first assignment).
    pub fn assign(&mut self, asn: Asn, org: OrgId, name: &str) {
        if let Some(prev) = self.org_of.insert(asn, org) {
            if let Some(list) = self.members.get_mut(&prev) {
                list.retain(|&a| a != asn);
            }
        }
        let list = self.members.entry(org).or_default();
        if !list.contains(&asn) {
            list.push(asn);
            list.sort_unstable();
        }
        self.names.entry(org).or_insert_with(|| name.to_string());
    }

    /// The organization operating `asn`, if known.
    pub fn org_of(&self, asn: Asn) -> Option<OrgId> {
        self.org_of.get(&asn).copied()
    }

    /// The organization's display name.
    pub fn org_name(&self, org: OrgId) -> Option<&str> {
        self.names.get(&org).map(|s| s.as_str())
    }

    /// All ASNs of one organization, sorted.
    pub fn members(&self, org: OrgId) -> &[Asn] {
        self.members.get(&org).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True when one organization operates both ASNs. An ASN is its own
    /// sibling only if it appears in the table; equal unknown ASNs are
    /// not siblings (no evidence).
    pub fn siblings(&self, a: Asn, b: Asn) -> bool {
        match (self.org_of(a), self.org_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The sibling set of `asn` (including itself), or just `asn` when
    /// unknown.
    pub fn sibling_set(&self, asn: Asn) -> Vec<Asn> {
        match self.org_of(asn) {
            Some(org) => self.members(org).to_vec(),
            None => vec![asn],
        }
    }

    /// Number of ASNs mapped.
    pub fn len(&self) -> usize {
        self.org_of.len()
    }

    /// True when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.org_of.is_empty()
    }

    /// Parses the text format `asn|orgid|orgname` (name optional); `#`
    /// comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<As2Org, String> {
        let mut out = As2Org::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|');
            let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            let asn: Asn = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad ASN"))?;
            let org: OrgId = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad org id"))?;
            let name = parts.next().unwrap_or("");
            out.assign(asn, org, name);
        }
        Ok(out)
    }

    /// Renders the mapping in the `asn|orgid|orgname` format, sorted by
    /// ASN.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (&asn, &org) in &self.org_of {
            let name = self.org_name(org).unwrap_or("");
            let _ = writeln!(out, "{asn}|{org}|{name}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> As2Org {
        let mut o = As2Org::new();
        o.assign(8075, 1, "Microsoft");
        o.assign(8069, 1, "Microsoft");
        o.assign(12076, 1, "Microsoft");
        o.assign(3356, 2, "Lumen");
        o
    }

    #[test]
    fn sibling_queries() {
        let o = sample();
        assert!(o.siblings(8075, 8069));
        assert!(o.siblings(8069, 12076));
        assert!(!o.siblings(8075, 3356));
        // Unknown ASNs are never siblings, even of themselves.
        assert!(!o.siblings(9999, 9999));
        assert!(o.siblings(8075, 8075));
    }

    #[test]
    fn membership() {
        let o = sample();
        assert_eq!(o.members(1), &[8069, 8075, 12076]);
        assert_eq!(o.sibling_set(8075), vec![8069, 8075, 12076]);
        assert_eq!(o.sibling_set(9999), vec![9999]);
        assert_eq!(o.org_name(1), Some("Microsoft"));
        assert_eq!(o.org_of(3356), Some(2));
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn reassignment_moves_membership() {
        let mut o = sample();
        o.assign(8069, 2, "Lumen");
        assert!(!o.siblings(8075, 8069));
        assert!(o.siblings(8069, 3356));
        assert_eq!(o.members(1), &[8075, 12076]);
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let o = sample();
        let text = o.to_text();
        let o2 = As2Org::parse(&text).unwrap();
        assert_eq!(o2.to_text(), text);
        assert!(o2.siblings(8075, 12076));
        assert_eq!(o2.org_name(2), Some("Lumen"));
    }

    #[test]
    fn parse_errors_and_comments() {
        assert!(As2Org::parse("x|1|Org").is_err());
        assert!(As2Org::parse("1|y|Org").is_err());
        let o = As2Org::parse("# header\n\n100|5|Name With Spaces\n").unwrap();
        assert_eq!(o.org_name(5), Some("Name With Spaces"));
        let o = As2Org::parse("100|5\n").unwrap(); // name optional
        assert_eq!(o.org_name(5), Some(""));
    }
}
