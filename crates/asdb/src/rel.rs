//! AS relationships: provider/customer and peer links.
//!
//! Modelled on CAIDA's `as-rel` dataset, which the paper's heuristics
//! consume: each line is `provider|customer|-1` or `peer|peer|0`. The
//! table answers the queries the election heuristic (RouterToAsAssignment
//! degree tie-break), bdrmapIT's refinement, and the §5 reasonableness
//! test need: relationship lookup, provider/customer/peer sets, and node
//! degree.

use crate::Asn;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The relationship between two ASes, from the first AS's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relationship {
    /// The first AS sells transit to the second.
    ProviderOf,
    /// The first AS buys transit from the second.
    CustomerOf,
    /// Settlement-free peers.
    Peer,
}

/// The AS relationship graph.
#[derive(Debug, Clone, Default)]
pub struct AsRelationships {
    /// asn → set of customer ASNs.
    customers: BTreeMap<Asn, BTreeSet<Asn>>,
    /// asn → set of provider ASNs.
    providers: BTreeMap<Asn, BTreeSet<Asn>>,
    /// asn → set of peer ASNs.
    peers: BTreeMap<Asn, BTreeSet<Asn>>,
}

impl AsRelationships {
    /// Creates an empty graph.
    pub fn new() -> AsRelationships {
        AsRelationships::default()
    }

    /// Records a provider → customer link.
    pub fn add_provider_customer(&mut self, provider: Asn, customer: Asn) {
        self.customers.entry(provider).or_default().insert(customer);
        self.providers.entry(customer).or_default().insert(provider);
    }

    /// Records a peer ↔ peer link.
    pub fn add_peer(&mut self, a: Asn, b: Asn) {
        self.peers.entry(a).or_default().insert(b);
        self.peers.entry(b).or_default().insert(a);
    }

    /// The relationship from `a` to `b`, if the ASes are adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        if self.customers.get(&a).is_some_and(|s| s.contains(&b)) {
            Some(Relationship::ProviderOf)
        } else if self.providers.get(&a).is_some_and(|s| s.contains(&b)) {
            Some(Relationship::CustomerOf)
        } else if self.peers.get(&a).is_some_and(|s| s.contains(&b)) {
            Some(Relationship::Peer)
        } else {
            None
        }
    }

    /// True if `a` provides transit to `b`.
    pub fn is_provider_of(&self, a: Asn, b: Asn) -> bool {
        matches!(self.relationship(a, b), Some(Relationship::ProviderOf))
    }

    /// Providers of `asn`.
    pub fn providers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.providers.get(&asn).into_iter().flatten().copied()
    }

    /// Customers of `asn`.
    pub fn customers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.customers.get(&asn).into_iter().flatten().copied()
    }

    /// Peers of `asn`.
    pub fn peers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.peers.get(&asn).into_iter().flatten().copied()
    }

    /// All neighbors of `asn` regardless of relationship type.
    pub fn neighbors(&self, asn: Asn) -> BTreeSet<Asn> {
        let mut out = BTreeSet::new();
        out.extend(self.providers(asn));
        out.extend(self.customers(asn));
        out.extend(self.peers(asn));
        out
    }

    /// Degree of `asn` in the relationship graph — the tie-break key of
    /// the RouterToAsAssignment election heuristic.
    pub fn degree(&self, asn: Asn) -> usize {
        self.neighbors(asn).len()
    }

    /// All ASNs appearing in the graph.
    pub fn asns(&self) -> BTreeSet<Asn> {
        let mut out = BTreeSet::new();
        out.extend(self.customers.keys().copied());
        out.extend(self.providers.keys().copied());
        out.extend(self.peers.keys().copied());
        out
    }

    /// True when no relationships are recorded.
    pub fn is_empty(&self) -> bool {
        self.customers.is_empty() && self.providers.is_empty() && self.peers.is_empty()
    }

    /// Parses the CAIDA `as-rel` text format: `a|b|-1` (a provides to b)
    /// or `a|b|0` (peers); `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<AsRelationships, String> {
        let mut rel = AsRelationships::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('|');
            let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            let a: Asn = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad first ASN"))?;
            let b: Asn = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad second ASN"))?;
            let kind = parts.next().ok_or_else(|| err("missing relationship"))?;
            match kind {
                "-1" => rel.add_provider_customer(a, b),
                "0" => rel.add_peer(a, b),
                _ => return Err(err("unknown relationship code")),
            }
        }
        Ok(rel)
    }

    /// Renders the graph in the `as-rel` text format, sorted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (p, custs) in &self.customers {
            for c in custs {
                let _ = writeln!(out, "{p}|{c}|-1");
            }
        }
        // Each peer link once, smaller ASN first.
        for (a, ps) in &self.peers {
            for b in ps {
                if a < b {
                    let _ = writeln!(out, "{a}|{b}|0");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AsRelationships {
        let mut r = AsRelationships::new();
        r.add_provider_customer(3356, 64500); // 3356 provides to 64500
        r.add_provider_customer(3356, 64501);
        r.add_provider_customer(64500, 64510);
        r.add_peer(64500, 64501);
        r
    }

    #[test]
    fn relationship_queries() {
        let r = sample();
        assert_eq!(r.relationship(3356, 64500), Some(Relationship::ProviderOf));
        assert_eq!(r.relationship(64500, 3356), Some(Relationship::CustomerOf));
        assert_eq!(r.relationship(64500, 64501), Some(Relationship::Peer));
        assert_eq!(r.relationship(3356, 64510), None);
        assert!(r.is_provider_of(64500, 64510));
        assert!(!r.is_provider_of(64510, 64500));
    }

    #[test]
    fn sets_and_degree() {
        let r = sample();
        assert_eq!(r.providers(64500).collect::<Vec<_>>(), vec![3356]);
        assert_eq!(r.customers(3356).collect::<Vec<_>>(), vec![64500, 64501]);
        assert_eq!(r.peers(64501).collect::<Vec<_>>(), vec![64500]);
        assert_eq!(r.degree(64500), 3); // 3356, 64510, 64501
        assert_eq!(r.degree(64510), 1);
        assert_eq!(r.neighbors(3356), BTreeSet::from([64500, 64501]));
        assert_eq!(r.asns().len(), 4);
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let text = "# comment\n3356|64500|-1\n3356|64501|-1\n64500|64510|-1\n64500|64501|0\n";
        let r = AsRelationships::parse(text).unwrap();
        assert_eq!(r.relationship(3356, 64500), Some(Relationship::ProviderOf));
        let rendered = r.to_text();
        let r2 = AsRelationships::parse(&rendered).unwrap();
        assert_eq!(r2.to_text(), rendered);
        assert_eq!(r2.degree(64500), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(AsRelationships::parse("x|1|-1").is_err());
        assert!(AsRelationships::parse("1|y|0").is_err());
        assert!(AsRelationships::parse("1|2").is_err());
        assert!(AsRelationships::parse("1|2|7").is_err());
        assert!(AsRelationships::parse("").unwrap().is_empty());
    }

    #[test]
    fn peer_symmetry() {
        let mut r = AsRelationships::new();
        r.add_peer(1, 2);
        assert_eq!(r.relationship(1, 2), Some(Relationship::Peer));
        assert_eq!(r.relationship(2, 1), Some(Relationship::Peer));
    }
}
