//! IPv4 prefixes.

use crate::{addr_parse, addr_to_string, Addr};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix: a network address and mask length. The stored address
/// is always masked to the prefix length, so two `Prefix` values compare
/// equal iff they denote the same network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: Addr,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, masking `addr` down to `len` bits. Panics if
    /// `len > 32`.
    pub fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix { addr: addr & Self::mask(len), len }
    }

    /// The network address (masked).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The prefix length in bits. (`len` here is mask length, not a
    /// container size — there is deliberately no `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask for a given length.
    pub fn mask(len: u8) -> Addr {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Addr) -> bool {
        addr & Self::mask(self.len) == self.addr
    }

    /// True if `other` is fully contained in (or equal to) this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// Number of addresses in the prefix (host + network + broadcast).
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// The `i`-th address in the prefix, or `None` past the end.
    pub fn nth(&self, i: u64) -> Option<Addr> {
        if i < self.size() {
            Some(self.addr.wrapping_add(i as u32))
        } else {
            None
        }
    }

    /// Splits the prefix into its two halves, or `None` for a /32.
    pub fn halves(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let low = Prefix::new(self.addr, len);
        let high = Prefix::new(self.addr | (1 << (32 - u32::from(len))), len);
        Some((low, high))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", addr_to_string(self.addr), self.len)
    }
}

/// Error from [`Prefix::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Prefix, PrefixParseError> {
        let err = || PrefixParseError(s.to_string());
        let (a, l) = s.split_once('/').ok_or_else(err)?;
        let addr = addr_parse(a).ok_or_else(err)?;
        let len: u8 = l.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr_from_octets;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("192.0.2.0/24").to_string(), "192.0.2.0/24");
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8"); // masked
        assert_eq!(p("0.0.0.0/0").to_string(), "0.0.0.0/0");
        assert_eq!(p("1.2.3.4/32").to_string(), "1.2.3.4/32");
        assert!("1.2.3.4".parse::<Prefix>().is_err());
        assert!("1.2.3.4/33".parse::<Prefix>().is_err());
        assert!("x/24".parse::<Prefix>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let net = p("192.0.2.0/24");
        assert!(net.contains(addr_from_octets([192, 0, 2, 255])));
        assert!(!net.contains(addr_from_octets([192, 0, 3, 0])));
        assert!(net.covers(&p("192.0.2.128/25")));
        assert!(net.covers(&p("192.0.2.0/24")));
        assert!(!net.covers(&p("192.0.0.0/16")));
        assert!(p("0.0.0.0/0").covers(&net));
    }

    #[test]
    fn size_and_nth() {
        let net = p("192.0.2.0/30");
        assert_eq!(net.size(), 4);
        assert_eq!(net.nth(0), Some(addr_from_octets([192, 0, 2, 0])));
        assert_eq!(net.nth(3), Some(addr_from_octets([192, 0, 2, 3])));
        assert_eq!(net.nth(4), None);
        assert_eq!(p("1.2.3.4/32").size(), 1);
    }

    #[test]
    fn halves() {
        let (lo, hi) = p("10.0.0.0/8").halves().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(p("1.1.1.1/32").halves().is_none());
    }

    #[test]
    fn equality_is_network_identity() {
        assert_eq!(p("10.1.2.3/8"), p("10.9.9.9/8"));
        assert_ne!(p("10.0.0.0/8"), p("10.0.0.0/9"));
    }
}
