//! Property-based tests for the AS databases, on the devkit harness:
//! the trie agrees with a linear scan, prefixes round-trip, and the
//! relationship graph keeps its invariants under random construction.

use hoiho_asdb::{addr_parse, addr_to_string, As2Org, AsRelationships, Prefix, RouteTable};
use hoiho_devkit::prop::{any, vec_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};

fn prefix() -> impl Gen<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(a, l))
}

props! {
    cases = 128;

    /// Longest-prefix match agrees with a brute-force scan.
    fn trie_agrees_with_linear_scan(
        entries in vec_of((prefix(), any::<u32>()), 0..80),
        queries in vec_of(any::<u32>(), 0..60),
    ) {
        // First value per distinct prefix wins in both implementations.
        let mut table: RouteTable<u32> = RouteTable::new();
        let mut list: Vec<(Prefix, u32)> = Vec::new();
        for (p, v) in entries {
            if table.get(&p).is_none() {
                table.insert(p, v);
                list.push((p, v));
            }
        }
        prop_assert_eq!(table.len(), list.len());
        for q in queries {
            let expect = list
                .iter()
                .filter(|(p, _)| p.contains(q))
                .max_by_key(|(p, _)| p.len())
                .map(|&(_, v)| v);
            prop_assert_eq!(table.lookup_value(q).copied(), expect);
        }
    }

    /// Prefix parse/display round-trip and containment sanity.
    fn prefix_roundtrip(p in prefix()) {
        let text = p.to_string();
        let parsed: Prefix = text.parse().unwrap();
        prop_assert_eq!(parsed, p);
        prop_assert!(p.contains(p.addr()));
        if let Some((lo, hi)) = p.halves() {
            prop_assert!(p.covers(&lo) && p.covers(&hi));
            prop_assert_eq!(lo.size() + hi.size(), p.size());
            prop_assert!(!lo.covers(&hi) && !hi.covers(&lo));
        }
    }

    /// Address dotted-quad round-trip.
    fn addr_roundtrip(a in any::<u32>()) {
        prop_assert_eq!(addr_parse(&addr_to_string(a)), Some(a));
    }

    /// Relationship queries stay mutually consistent however the graph
    /// was built.
    fn relationships_consistent(
        pc in vec_of((1u32..200, 1u32..200), 0..60),
        peers in vec_of((1u32..200, 1u32..200), 0..60),
    ) {
        let mut rel = AsRelationships::new();
        for &(p, c) in &pc {
            rel.add_provider_customer(p, c);
        }
        for &(a, b) in &peers {
            rel.add_peer(a, b);
        }
        for asn in rel.asns() {
            for n in rel.neighbors(asn) {
                // Every neighbor relationship has a perspective from
                // both sides (provider/customer flip; peer symmetric).
                let fwd = rel.relationship(asn, n);
                let back = rel.relationship(n, asn);
                prop_assert!(fwd.is_some());
                prop_assert!(back.is_some());
            }
            prop_assert_eq!(rel.degree(asn), rel.neighbors(asn).len());
        }
        // Text round-trip preserves every query.
        let text = rel.to_text();
        let rel2 = AsRelationships::parse(&text).unwrap();
        prop_assert_eq!(rel2.to_text(), text);
    }

    /// Sibling relation is reflexive (for known ASNs), symmetric, and
    /// transitive — it is org-equality.
    fn siblings_are_equivalence(
        assignments in vec_of((1u32..100, 0u32..10), 1..50),
    ) {
        let mut org = As2Org::new();
        for &(asn, o) in &assignments {
            org.assign(asn, o, "org");
        }
        let asns: Vec<u32> = assignments.iter().map(|&(a, _)| a).collect();
        for &a in &asns {
            prop_assert!(org.siblings(a, a));
            for &b in &asns {
                prop_assert_eq!(org.siblings(a, b), org.siblings(b, a));
                for &c in &asns {
                    if org.siblings(a, b) && org.siblings(b, c) {
                        prop_assert!(org.siblings(a, c));
                    }
                }
            }
            // sibling_set contains exactly the org's members.
            let set = org.sibling_set(a);
            prop_assert!(set.contains(&a));
            for &s in &set {
                prop_assert!(org.siblings(a, s));
            }
        }
    }
}
