//! Micro-benchmark harness: warmup, calibrated fixed iteration budget,
//! median + MAD, optional throughput — std only, criterion-shaped.
//!
//! The API mirrors the slice of criterion the workspace's bench targets
//! used (`bench_function`, `benchmark_group`, `throughput`,
//! `sample_size`, `Bencher::iter`, `Bencher::iter_batched`), so porting
//! a bench is a `use`-line swap plus an explicit `main`. Each bench
//! binary writes `BENCH_<name>.json` at the workspace root; that file
//! is the unit of the repo's performance trajectory, so the schema is
//! documented in DESIGN.md and kept append-compatible.
//!
//! Statistics: per benchmark we take `samples` timing samples, each of
//! `iters_per_sample` iterations (calibrated during warmup so one
//! sample costs roughly [`SAMPLE_TARGET_NS`]). The reported center is
//! the **median** per-iteration time and the spread is the **median
//! absolute deviation** (MAD) — both robust to the scheduling outliers
//! that dominate short timings on shared machines, which is why they
//! are preferred over mean/stddev here.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Warmup budget before calibration.
const WARMUP_NS: u64 = 30_000_000;
/// Target wall-clock cost of one timing sample.
const SAMPLE_TARGET_NS: u64 = 15_000_000;
/// Hard cap on one benchmark's measured phase.
const MAX_BENCH_NS: u64 = 2_000_000_000;
/// Default number of timing samples.
const DEFAULT_SAMPLES: usize = 15;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for
/// criterion compatibility; the harness re-runs setup per iteration
/// either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// One benchmark's measured result.
#[derive(Debug, Clone)]
struct Record {
    full_id: String,
    iters_per_sample: u64,
    samples: usize,
    median_ns: f64,
    mad_ns: f64,
    /// `(elements_per_iter, elements_per_sec)`.
    throughput: Option<(u64, f64)>,
}

/// Runs the measurement protocol for one routine.
///
/// `routine(k)` must execute the benchmarked operation `k` times and
/// return the wall-clock time of those `k` iterations only.
fn measure(samples: usize, routine: &mut dyn FnMut(u64) -> Duration) -> (u64, Vec<f64>) {
    // Warmup + calibration: grow the batch until it is measurable,
    // accumulating an estimate of per-iteration cost.
    let mut est_ns = f64::MAX;
    let mut spent = 0u64;
    let mut batch = 1u64;
    while spent < WARMUP_NS {
        let d = routine(batch).as_nanos() as u64;
        spent += d.max(1);
        est_ns = est_ns.min(d as f64 / batch as f64);
        if d < 1_000_000 {
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
    let est_ns = est_ns.max(0.5);
    let mut iters = (SAMPLE_TARGET_NS as f64 / est_ns) as u64;
    iters = iters.clamp(1, 1 << 24);
    // Respect the total cap: shrink the batch before dropping samples.
    let projected = est_ns * iters as f64 * samples as f64;
    if projected > MAX_BENCH_NS as f64 {
        iters = ((MAX_BENCH_NS as f64 / samples as f64 / est_ns) as u64).max(1);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let d = routine(iters);
        per_iter.push(d.as_nanos() as f64 / iters as f64);
    }
    (iters, per_iter)
}

/// Median of a sample set (empty → 0).
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation around the median.
fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

/// A scalar fact measured outside the timing protocol (e.g. a cache
/// hit rate), recorded alongside the timing results.
#[derive(Debug, Clone)]
struct Metric {
    id: String,
    value: f64,
    unit: String,
}

/// Collects and measures benchmarks, then writes `BENCH_<name>.json`.
pub struct Harness {
    name: String,
    records: Vec<Record>,
    metrics: Vec<Metric>,
}

impl Harness {
    /// A harness whose results land in `BENCH_<name>.json`.
    pub fn new(name: &str) -> Harness {
        Harness { name: name.to_string(), records: Vec::new(), metrics: Vec::new() }
    }

    /// Records a scalar metric (a measured fact that is not a timing,
    /// like a hit rate or a balance factor). Metrics land in a
    /// `"metrics"` array next to `"results"` — an append-compatible
    /// schema extension; absent when no metrics were recorded.
    ///
    /// # Panics
    ///
    /// On a duplicate `id` (each metric is one fact per run; silently
    /// keeping both would make `scripts/bench_diff.sh`'s by-id join
    /// ambiguous) and on non-finite values (NaN/∞ have no JSON
    /// rendering, so the results document would be unparseable).
    pub fn metric(&mut self, id: &str, value: f64, unit: &str) {
        assert!(value.is_finite(), "metric {id}: non-finite value {value} has no JSON rendering");
        assert!(
            !self.metrics.iter().any(|m| m.id == id),
            "metric {id}: duplicate id — each metric may be recorded once per run"
        );
        eprintln!("metric {id} = {value} {unit}");
        self.metrics.push(Metric { id: id.to_string(), value, unit: unit.to_string() });
    }

    /// Benchmarks one routine under a full id like `learn/merge_figure4`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        self.run_one(id.to_string(), None, DEFAULT_SAMPLES, f);
    }

    /// Opens a named group; its benchmarks get ids `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput: None,
            samples: DEFAULT_SAMPLES,
        }
    }

    fn run_one(
        &mut self,
        full_id: String,
        throughput: Option<Throughput>,
        samples: usize,
        f: impl FnOnce(&mut Bencher),
    ) {
        eprint!("bench {full_id} ... ");
        let mut b = Bencher { samples, outcome: None };
        f(&mut b);
        let (iters_per_sample, per_iter) =
            b.outcome.expect("benchmark closure must call iter or iter_batched");
        let m = median(&per_iter);
        let d = mad(&per_iter, m);
        let thr = throughput.map(|Throughput::Elements(e)| (e, e as f64 * 1e9 / m.max(1e-9)));
        eprintln!("{} ±{} ({iters_per_sample} iters/sample){}", human_ns(m), human_ns(d), {
            match thr {
                Some((_, eps)) => format!(" {:.3} Melem/s", eps / 1e6),
                None => String::new(),
            }
        });
        self.records.push(Record {
            full_id,
            iters_per_sample,
            samples: per_iter.len(),
            median_ns: m,
            mad_ns: d,
            throughput: thr,
        });
    }

    /// Writes `BENCH_<name>.json` at the workspace root (override the
    /// directory with `BENCH_OUT_DIR`) and prints its path.
    pub fn finish(self) {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(workspace_root);
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let json = self.to_json();
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    /// Renders the results document; schema documented in DESIGN.md.
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"benchmark\": {},", json_str(&self.name));
        s.push_str("  \"harness\": \"hoiho-devkit\",\n");
        s.push_str("  \"unit\": \"ns_per_iter\",\n");
        s.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \"throughput_elems_per_iter\": {}, \
                 \"throughput_elems_per_sec\": {}}}",
                json_str(&r.full_id),
                r.iters_per_sample,
                r.samples,
                r.median_ns,
                r.mad_ns,
                r.throughput.map(|(e, _)| e.to_string()).unwrap_or_else(|| "null".into()),
                r.throughput.map(|(_, eps)| format!("{eps:.1}")).unwrap_or_else(|| "null".into()),
            );
            s.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        if self.metrics.is_empty() {
            s.push_str("  ]\n}\n");
        } else {
            s.push_str("  ],\n  \"metrics\": [\n");
            for (i, m) in self.metrics.iter().enumerate() {
                let _ = write!(
                    s,
                    "    {{\"id\": {}, \"value\": {}, \"unit\": {}}}",
                    json_str(&m.id),
                    m.value,
                    json_str(&m.unit),
                );
                s.push_str(if i + 1 < self.metrics.len() { ",\n" } else { "\n" });
            }
            s.push_str("  ]\n}\n");
        }
        s
    }
}

/// A benchmark group: shared throughput annotation and sample count.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl Group<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the number of timing samples (min 7 for a stable MAD).
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(7);
    }

    /// Benchmarks one routine; its id is `group/name`.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let id = format!("{}/{}", self.name, name.as_ref());
        self.harness.run_one(id, self.throughput, self.samples, f);
    }

    /// Ends the group (kept for criterion-call-shape compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs the measurement protocol.
pub struct Bencher {
    samples: usize,
    outcome: Option<(u64, Vec<f64>)>,
}

impl Bencher {
    /// Measures `f` — the benchmarked operation — per iteration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        self.outcome = Some(measure(self.samples, &mut |k| {
            let t = Instant::now();
            for _ in 0..k {
                std::hint::black_box(f());
            }
            t.elapsed()
        }));
    }

    /// Measures `routine` over fresh `setup()` output each iteration;
    /// setup time is excluded from the timing.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        self.outcome = Some(measure(self.samples, &mut |k| {
            let mut total = Duration::ZERO;
            for _ in 0..k {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                total += t.elapsed();
            }
            total
        }));
    }
}

/// Workspace root: two levels above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// JSON string literal with the escapes our ids can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Human-readable nanoseconds.
fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0];
        let m = median(&xs);
        assert_eq!(m, 5.0);
        assert_eq!(mad(&xs, m), 2.0);
        let even = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&even), 2.5);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("learn/suffix_scale/100"), "\"learn/suffix_scale/100\"");
    }

    #[test]
    fn measure_produces_samples() {
        let mut counter = 0u64;
        let (iters, per_iter) = measure(7, &mut |k| {
            let t = Instant::now();
            for _ in 0..k {
                counter = std::hint::black_box(counter.wrapping_add(1));
            }
            t.elapsed()
        });
        assert!(iters >= 1);
        assert_eq!(per_iter.len(), 7);
        assert!(per_iter.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn document_renders_valid_shape() {
        let mut h = Harness::new("unit");
        h.records.push(Record {
            full_id: "g/a".into(),
            iters_per_sample: 10,
            samples: 15,
            median_ns: 123.4,
            mad_ns: 1.2,
            throughput: Some((100, 8.1e8)),
        });
        h.records.push(Record {
            full_id: "g/b".into(),
            iters_per_sample: 1,
            samples: 7,
            median_ns: 9.0,
            mad_ns: 0.0,
            throughput: None,
        });
        let json = h.to_json();
        assert!(json.contains("\"median_ns\": 123.4"));
        assert!(json.contains("\"mad_ns\": 1.2"));
        assert!(json.contains("\"throughput_elems_per_sec\": null"));
        assert!(json.contains("\"benchmark\": \"unit\""));
        assert!(!json.contains("\"metrics\""), "no metrics array unless metrics recorded");
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the dependency-free devkit.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn metric_rejects_duplicate_ids() {
        let mut h = Harness::new("unit");
        h.metric("cluster/hit_rate_pct", 87.5, "percent");
        h.metric("cluster/hit_rate_pct", 88.0, "percent");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn metric_rejects_non_finite_values() {
        let mut h = Harness::new("unit");
        h.metric("cluster/hit_rate_pct", f64::NAN, "percent");
    }

    #[test]
    fn metrics_render_next_to_results() {
        let mut h = Harness::new("unit");
        h.metric("cluster/hit_rate_pct", 87.5, "percent");
        h.metric("cluster/balance", 1.0, "ratio");
        let json = h.to_json();
        assert!(json.contains("\"metrics\": ["));
        assert!(json.contains("{\"id\": \"cluster/hit_rate_pct\", \"value\": 87.5, \"unit\": \"percent\"}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
