//! Minimal property-testing harness: generators, a deterministic
//! runner, and entropy-level shrinking — std only.
//!
//! ## Model
//!
//! A [`Gen`] does not shrink values; it *reads* values out of a finite
//! byte buffer ([`Source`]). Random testing fills the buffer from the
//! devkit PRNG; shrinking transforms the buffer (truncate, zero, halve
//! bytes) and re-runs generation, so every shrunk candidate is by
//! construction a value the generator could have produced — no
//! per-combinator shrink logic, and `map`/`one_of` shrink for free. A
//! drained buffer reads as zeros, which generators map to their minimal
//! value (range start, shortest collection, first branch).
//!
//! ## Usage
//!
//! ```ignore
//! use hoiho_devkit::{props, prop_assert, prop_assert_eq};
//! use hoiho_devkit::prop::vec_of;
//!
//! props! {
//!     cases = 128;
//!
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//!
//!     fn sort_is_idempotent(v in vec_of(0u8..=255, 0..32)) {
//!         let mut once = v.clone();
//!         once.sort();
//!         let mut twice = once.clone();
//!         twice.sort();
//!         prop_assert_eq!(once, twice);
//!     }
//! }
//! ```
//!
//! Bodies are closures returning `Result<(), String>`; the
//! `prop_assert*` macros return `Err` on failure so the runner can
//! shrink. Plain `panic!`/`unwrap` failures are also caught and shrunk.
//!
//! Runs are deterministic: the per-case seed is derived from the test
//! name, so a failure reproduces without recording anything. Set
//! `DEVKIT_CASES=<n>` to override every suite's case count (e.g. a
//! longer soak in CI).

use crate::rng::{SeedableRng, StdRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Bytes of entropy per test case. Generators reading past the end see
/// zeros, so this is a soft budget, not a hard limit.
const BUF_LEN: usize = 4096;

/// Maximum candidate evaluations per shrink.
const SHRINK_BUDGET: usize = 600;

// ---------------------------------------------------------------------
// Entropy source
// ---------------------------------------------------------------------

/// A finite byte buffer generators draw structured values from.
pub struct Source<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Source<'a> {
    /// Wraps a buffer; reads past the end yield zeros.
    pub fn new(bytes: &'a [u8]) -> Source<'a> {
        Source { bytes, pos: 0 }
    }

    /// Next byte (zero once drained).
    pub fn byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Next little-endian u64 (zero-padded once drained).
    pub fn u64(&mut self) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v |= u64::from(self.byte()) << (8 * i);
        }
        v
    }

    /// Uniform draw from `[0, span)`; `0` when drained. `span` ≥ 1.
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.u64()) * u128::from(span)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A generator of test values, reading its choices from a [`Source`].
pub trait Gen {
    /// The value type produced.
    type Value: Clone + Debug;

    /// Produces one value from the source's bytes.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Maps generated values through `f` (named after proptest's
    /// `prop_map` — a plain `map` would collide with `Iterator::map`
    /// on range generators).
    fn prop_map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases, for heterogeneous collections like [`one_of`].
    fn boxed(self) -> DynGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased generator.
pub type DynGen<T> = Box<dyn Gen<Value = T>>;

impl<T: Clone + Debug> Gen for DynGen<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (**self).generate(src)
    }
}

/// Integer ranges are generators: `0u32..80` draws uniformly and
/// shrinks toward the range start.
macro_rules! int_range_gen {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty generator range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + (src.below(span) as i128)) as $t
            }
        }
        impl Gen for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty generator range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                ((lo as i128) + (src.below(span) as i128)) as $t
            }
        }
    )*};
}
int_range_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain values: integers over their whole range, `bool` a coin.
pub struct AnyGen<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types [`any`] can draw from their full domain.
pub trait Arb: Clone + Debug {
    /// Draws one value from the source.
    fn arb(src: &mut Source) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arb for $t {
            fn arb(src: &mut Source) -> $t {
                src.u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arb for bool {
    fn arb(src: &mut Source) -> bool {
        src.byte() & 1 == 1
    }
}

impl<T: Arb> Gen for AnyGen<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        T::arb(src)
    }
}

/// A generator over a type's full domain: `any::<u64>()`.
pub fn any<T: Arb>() -> AnyGen<T> {
    AnyGen { _marker: std::marker::PhantomData }
}

/// The constant generator.
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

/// A constant generator: `just(Elem::Digits)`.
pub fn just<T: Clone + Debug>(v: T) -> Just<T> {
    Just(v)
}

/// See [`Gen::prop_map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U: Clone + Debug, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// Vectors of `elem` with length drawn from `len`.
pub struct VecOf<G, L> {
    elem: G,
    len: L,
}

impl<G: Gen, L: Gen> Gen for VecOf<G, L>
where
    L::Value: TryInto<usize>,
{
    type Value = Vec<G::Value>;
    fn generate(&self, src: &mut Source) -> Vec<G::Value> {
        let n = self.len.generate(src).try_into().unwrap_or(0);
        (0..n).map(|_| self.elem.generate(src)).collect()
    }
}

/// A vector generator: `vec_of(0u32..10, 0..80)`.
pub fn vec_of<G: Gen, L: Gen>(elem: G, len: L) -> VecOf<G, L>
where
    L::Value: TryInto<usize>,
{
    VecOf { elem, len }
}

/// Strings over a fixed character set with length drawn from `len`.
pub struct StringOf<L> {
    set: &'static str,
    len: L,
}

impl<L: Gen> Gen for StringOf<L>
where
    L::Value: TryInto<usize>,
{
    type Value = String;
    fn generate(&self, src: &mut Source) -> String {
        let chars: Vec<char> = self.set.chars().collect();
        let n = self.len.generate(src).try_into().unwrap_or(0);
        (0..n).map(|_| chars[src.below(chars.len() as u64) as usize]).collect()
    }
}

/// A string generator over `set`: `string_of("abc123", 1..=4)` plays the
/// role of the regex strategy `[abc123]{1,4}`.
pub fn string_of<L: Gen>(set: &'static str, len: L) -> StringOf<L>
where
    L::Value: TryInto<usize>,
{
    StringOf { set, len }
}

/// Uniform choice between boxed alternatives (first branch is the
/// shrink target).
pub struct OneOf<T> {
    gens: Vec<DynGen<T>>,
}

impl<T: Clone + Debug> Gen for OneOf<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        let i = src.below(self.gens.len() as u64) as usize;
        self.gens[i].generate(src)
    }
}

/// A union generator: `one_of(vec![g1.boxed(), g2.boxed()])`.
pub fn one_of<T: Clone + Debug>(gens: Vec<DynGen<T>>) -> OneOf<T> {
    assert!(!gens.is_empty(), "one_of needs at least one generator");
    OneOf { gens }
}

macro_rules! tuple_gen {
    ($($g:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}
tuple_gen!(A: 0);
tuple_gen!(A: 0, B: 1);
tuple_gen!(A: 0, B: 1, C: 2);
tuple_gen!(A: 0, B: 1, C: 2, D: 3);
tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// FNV-1a, for deriving a stable per-test seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Panic-noise suppression while shrinking: candidate evaluations are
/// expected to panic, and the default hook would spew a backtrace per
/// candidate. The custom hook stays silent while any shrink is active.
static SUPPRESSED: AtomicUsize = AtomicUsize::new(0);
static HOOK: OnceLock<()> = OnceLock::new();

fn install_quiet_hook() {
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESSED.load(Ordering::SeqCst) == 0 {
                default(info);
            }
        }));
    });
}

/// Outcome of one evaluation of the property body.
fn eval<V, F: Fn(V) -> Result<(), String>>(f: &F, v: V) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| f(v))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Runs `cases` random cases of the property, shrinking any failure to
/// a small counterexample before panicking with it.
///
/// Deterministic: case `i` of a test named `n` always sees the same
/// bytes. `DEVKIT_CASES` overrides `cases` globally.
pub fn run<G: Gen, F: Fn(G::Value) -> Result<(), String>>(
    name: &str,
    cases: u32,
    gen: &G,
    test: F,
) {
    install_quiet_hook();
    let cases = std::env::var("DEVKIT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases)
        .max(1);
    let base = fnv1a(name);
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut buf = vec![0u8; BUF_LEN];
        for chunk in buf.chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        let value = gen.generate(&mut Source::new(&buf));
        if let Err(first_err) = eval(&test, value.clone()) {
            SUPPRESSED.fetch_add(1, Ordering::SeqCst);
            let minimal = shrink(gen, &test, buf);
            SUPPRESSED.fetch_sub(1, Ordering::SeqCst);
            let min_value = gen.generate(&mut Source::new(&minimal));
            let min_err = eval(&test, min_value.clone()).err().unwrap_or_else(|| first_err.clone());
            panic!(
                "property {name} failed at case {case}/{cases}\n\
                 minimal counterexample: {min_value:?}\n\
                 error: {min_err}\n\
                 (original input: {value:?}; original error: {first_err})"
            );
        }
    }
}

/// Shrinks a failing entropy buffer: truncations first (they zero whole
/// suffixes, collapsing sizes and choices), then zeroed windows, then
/// per-byte reductions. Keeps any candidate that still fails; bounded
/// by [`SHRINK_BUDGET`] evaluations.
fn shrink<G: Gen, F: Fn(G::Value) -> Result<(), String>>(
    gen: &G,
    test: &F,
    mut buf: Vec<u8>,
) -> Vec<u8> {
    let mut budget = SHRINK_BUDGET;
    let fails = |candidate: &[u8], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let v = gen.generate(&mut Source::new(candidate));
        eval(test, v).is_err()
    };

    // Pass 1: binary truncation.
    let mut len = buf.len();
    while len > 0 && budget > 0 {
        let half = len / 2;
        if fails(&buf[..half], &mut budget) {
            len = half;
        } else {
            break;
        }
    }
    buf.truncate(len);

    // Pass 2 & 3 repeat until a full sweep makes no progress.
    loop {
        let mut improved = false;

        // Zero out windows of shrinking size.
        let mut window = buf.len().max(1);
        while window >= 1 && budget > 0 {
            let mut start = 0;
            while start < buf.len() && budget > 0 {
                let end = (start + window).min(buf.len());
                if buf[start..end].iter().any(|&b| b != 0) {
                    let mut cand = buf.clone();
                    cand[start..end].fill(0);
                    if fails(&cand, &mut budget) {
                        buf = cand;
                        improved = true;
                    }
                }
                start += window;
            }
            if window == 1 {
                break;
            }
            window /= 2;
        }

        // Reduce individual bytes: halve for coarse moves, then
        // decrement for the last fine steps toward a boundary.
        for i in 0..buf.len() {
            while budget > 0 && buf[i] > 0 {
                let mut cand = buf.clone();
                cand[i] /= 2;
                if !fails(&cand, &mut budget) {
                    break;
                }
                buf = cand;
                improved = true;
            }
            while budget > 0 && buf[i] > 0 {
                let mut cand = buf.clone();
                cand[i] -= 1;
                if !fails(&cand, &mut budget) {
                    break;
                }
                buf = cand;
                improved = true;
            }
        }

        if !improved || budget == 0 {
            break;
        }
    }
    buf
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Asserts a condition inside a property body, returning `Err` (so the
/// runner can shrink) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                va,
                vb
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                va
            ));
        }
    }};
}

/// Declares property tests. Each `fn` becomes a `#[test]` whose
/// arguments are drawn from the given generators; see the module docs
/// for an example. An optional leading `cases = N;` sets the per-test
/// case count (default 64).
#[macro_export]
macro_rules! props {
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::props!(@expand $cases; $($rest)*);
    };
    (@expand $cases:expr; $(
        $(#[doc = $doc:expr])*
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let __gen = ($($gen,)+);
                $crate::prop::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cases,
                    &__gen,
                    |__value| {
                        let ($($arg,)+) = __value;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::props!(@expand 64; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_source_is_minimal() {
        let mut src = Source::new(&[]);
        assert_eq!((5u32..17).generate(&mut src), 5);
        assert_eq!((0usize..=9).generate(&mut src), 0);
        assert_eq!(vec_of(0u8..10, 0..5).generate(&mut src), Vec::<u8>::new());
        assert_eq!(string_of("xyz", 2..=4).generate(&mut src), "xx");
    }

    #[test]
    fn deterministic_across_runs() {
        let g = vec_of(0u32..1000, 0..20);
        let mut rng = StdRng::seed_from_u64(99);
        let mut buf = vec![0u8; 256];
        for b in &mut buf {
            *b = rng.next_u64() as u8;
        }
        let a = g.generate(&mut Source::new(&buf));
        let b = g.generate(&mut Source::new(&buf));
        assert_eq!(a, b);
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // Property: all u32s are < 100. Fails; minimal failing value
        // must shrink to exactly 100.
        let gen = 0u32..10_000;
        let test = |v: u32| if v < 100 { Ok(()) } else { Err(format!("{v} too big")) };
        // Find a failing buffer first.
        let mut rng = StdRng::seed_from_u64(1234);
        let mut buf = vec![0u8; 64];
        loop {
            for b in &mut buf {
                *b = rng.next_u64() as u8;
            }
            if gen.generate(&mut Source::new(&buf)) >= 100 {
                break;
            }
        }
        let minimal = shrink(&gen, &test, buf);
        let v = gen.generate(&mut Source::new(&minimal));
        assert!((100..=140).contains(&v), "shrinker landed far from the boundary: {v}");
    }

    props! {
        cases = 50;

        /// The harness's own smoke test, via the public macro.
        fn vec_reverse_involution(v in vec_of(any::<u32>(), 0..40)) {
            let mut w = v.clone();
            w.reverse();
            w.reverse();
            prop_assert_eq!(v, w);
        }

        fn strings_respect_charset(s in string_of("ab", 0..8)) {
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
