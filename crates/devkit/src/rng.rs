//! Seedable, deterministic PRNG with the exact surface the workspace
//! already calls: `StdRng::seed_from_u64`, `random_range`, `random_bool`,
//! and `random::<f64>()`.
//!
//! The generator is xoshiro256** (Blackman & Vigna 2018) seeded through
//! SplitMix64, the standard recipe for expanding a 64-bit seed into a
//! full 256-bit state without correlated lanes. Both algorithms are
//! public domain and a few lines each, which is what lets this crate be
//! std-only: the offline build environment cannot fetch `rand`, and the
//! simulation only needs determinism and decent equidistribution, not
//! cryptographic strength.
//!
//! Determinism is a hard guarantee: the same seed produces the same
//! stream on every platform and every release of this crate. The netsim
//! fixtures, PeeringDB synthesis, and alias-resolution model all derive
//! their worlds from a config seed, so any change to the stream silently
//! invalidates recorded expectations. `tests` below pin known values.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: expands a 64-bit seed into uncorrelated state words.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of a generator from a 64-bit seed.
///
/// Mirrors the subset of `rand::SeedableRng` the workspace uses, so
/// callers port by swapping the `use` line only.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xoshiro256** scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types drawable uniformly from their "natural" domain via
/// [`RngExt::random`]: floats in `[0, 1)`, integers over the full range,
/// bools as a fair coin.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`RngExt::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `lo < hi` is the caller's contract.
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// The successor value, for inclusive ranges (`None` on overflow).
    fn checked_succ(self) -> Option<Self>;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                // Span fits u64 for every supported type; Lemire-style
                // widening multiply maps next_u64 onto it without bias
                // worth caring about at span ≪ 2^64 (and deterministic,
                // which is the property the sim actually relies on).
                let span = (hi as i128 - lo as i128) as u64;
                let hi64 = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                ((lo as i128) + (hi64 as i128)) as $t
            }
            #[inline]
            fn checked_succ(self) -> Option<$t> {
                self.checked_add(1)
            }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Sample;
    /// Draws uniformly from the range. Panics on an empty range, like
    /// `rand` does.
    fn sample_from(self, rng: &mut StdRng) -> Self::Sample;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Sample = T;
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "random_range called with an empty range");
        T::sample(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Sample = T;
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range called with an empty range");
        match hi.checked_succ() {
            Some(end) => T::sample(rng, lo, end),
            // lo..=MAX: fold one extra draw in rather than widening.
            None => {
                if bool::draw(rng) {
                    hi
                } else {
                    T::sample(rng, lo, hi)
                }
            }
        }
    }
}

/// The sampling methods the workspace calls on [`StdRng`].
///
/// Named and shaped after the calls already present in `netsim`, `pdb`,
/// and `itdk` (`random_range`, `random_bool`, `random::<f64>()`), so the
/// port away from the unfetchable `rand` crate is a `use`-line swap.
pub trait RngExt {
    /// Uniform draw from a range, e.g. `rng.random_range(0..10u32)`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Sample;
    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool;
    /// Uniform draw from a type's natural domain, e.g.
    /// `rng.random::<f64>()` for `[0, 1)`.
    fn random<T: Standard>(&mut self) -> T;
}

impl RngExt for StdRng {
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Sample {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_pinned() {
        // Golden values: xoshiro256** seeded via SplitMix64(1). Any
        // change here changes every generated Internet — do not "fix"
        // these by updating them without regenerating all fixtures.
        let mut r = StdRng::seed_from_u64(1);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = StdRng::seed_from_u64(1);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        let mut r3 = StdRng::seed_from_u64(2);
        assert_ne!(first[0], r3.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.random_range(0u8..=32);
            assert!(w <= 32);
            let x = r.random_range(3usize..4);
            assert_eq!(x, 3);
            let y = r.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn inclusive_max_range() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = r.random_range(250u8..=255);
            assert!(v >= 250);
        }
    }
}
