//! Hermetic, std-only devkit for the hoiho workspace.
//!
//! The offline build environment cannot reach a crates.io registry, so
//! this crate replaces the three external dev dependencies the seed
//! tried to pull — `rand`, `proptest`, and `criterion` — with small
//! in-tree equivalents exposing exactly the API surface the workspace
//! already calls:
//!
//! * [`rng`] — a seedable SplitMix64/xoshiro256** PRNG with `StdRng`,
//!   [`SeedableRng`], and [`RngExt`] (`random_range`, `random_bool`,
//!   `random`). The [`rngs`] alias module keeps the `rand`-shaped
//!   import path so porting is a one-line `use` swap.
//! * [`prop`] — a property-testing harness: integer/vec/string
//!   generators, a deterministic runner, entropy-level bounded
//!   shrinking, and the [`props!`] / [`prop_assert!`] macros.
//! * [`bench`] — a criterion-shaped micro-benchmark harness: warmup,
//!   calibrated iteration budget, median + MAD, throughput, and
//!   `BENCH_<name>.json` output at the workspace root.
//!
//! Policy: this crate must stay dependency-free (`scripts/no-external-deps.sh`
//! enforces it for the whole workspace), and the PRNG stream is pinned
//! by golden tests — the simulation's fixtures are functions of it.

pub mod bench;
pub mod prop;
pub mod rng;

/// `rand`-shaped alias so call sites keep `use hoiho_devkit::rngs::StdRng`.
pub mod rngs {
    pub use crate::rng::StdRng;
}

pub use rng::{RngExt, SeedableRng};
