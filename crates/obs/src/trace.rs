//! Tracing spans over a seedable clock, rendered as Chrome
//! trace-event JSON.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s: the guard stamps the start
//! time on creation and records a finished span on drop. Spans carry a
//! name, string arguments (e.g. `("suffix", "example.com")`), and the
//! recording thread's id; hierarchy is *implicit* — the Chrome trace
//! viewer nests `ph:"X"` complete events by time containment per
//! thread, so an enclosing `learn_suffix` span drawn around the five
//! phase spans renders as a tree without any parent-id bookkeeping.
//!
//! Time comes from a [`Clock`]: production uses [`WallClock`]
//! (monotonic, anchored at tracer creation), tests use [`ManualClock`]
//! and advance it by hand so recorded durations are exact and
//! deterministic.

use crate::json_str;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic nanosecond clock. `now_ns` must be non-decreasing.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock, anchored at construction so traces start
/// near t=0.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored now.
    pub fn new() -> WallClock {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] is called.
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock at t=0.
    pub fn new() -> ManualClock {
        ManualClock { now: AtomicU64::new(0) }
    }

    /// Moves time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Default for ManualClock {
    fn default() -> ManualClock {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (e.g. a learner phase: `generate`, `merge`, ...).
    pub name: String,
    /// String arguments attached at creation.
    pub args: Vec<(String, String)>,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Start, clock nanoseconds.
    pub start_ns: u64,
    /// End, clock nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Collects spans from any number of threads; renders them as Chrome
/// trace-event JSON.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Dense per-thread ids so the trace viewer gets stable small `tid`s
/// instead of opaque OS thread ids.
pub(crate) fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Tracer {
    /// A tracer on the real monotonic clock.
    pub fn new() -> Tracer {
        Tracer::with_clock(Arc::new(WallClock::new()))
    }

    /// A tracer on an injected clock (tests pass a
    /// [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Tracer {
        Tracer { clock, spans: Mutex::new(Vec::new()) }
    }

    /// Opens a span; it is recorded when the returned guard drops.
    /// Args are captured eagerly (they are tiny — a suffix, a count).
    pub fn span(&self, name: &str, args: &[(&str, &str)]) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name: name.to_string(),
            args: args.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            tid: current_tid(),
            start_ns: self.clock.now_ns(),
        }
    }

    /// Number of finished spans.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("tracer lock poisoned").len()
    }

    /// True when no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all finished spans, in finish order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("tracer lock poisoned").clone()
    }

    /// Renders all finished spans as a Chrome trace-event JSON
    /// document (`{"traceEvents": [...]}`, `ph:"X"` complete events,
    /// timestamps and durations in microseconds with nanosecond
    /// precision preserved in the fraction). Loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.spans.lock().expect("tracer lock poisoned");
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_str(&s.name));
            out.push_str(",\"cat\":\"hoiho\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&s.tid.to_string());
            out.push_str(&format!(
                ",\"ts\":{},\"dur\":{}",
                micros(s.start_ns),
                micros(s.duration_ns())
            ));
            out.push_str(",\"args\":{");
            for (j, (k, v)) in s.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(k));
                out.push(':');
                out.push_str(&json_str(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    fn finish(&self, record: SpanRecord) {
        self.spans.lock().expect("tracer lock poisoned").push(record);
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

/// Nanoseconds → microseconds with the sub-µs part kept as a decimal
/// fraction (Chrome accepts fractional `ts`/`dur`).
fn micros(ns: u64) -> String {
    if ns % 1000 == 0 {
        (ns / 1000).to_string()
    } else {
        // Trim trailing zeros off the 3-digit fraction.
        let mut s = format!("{}.{:03}", ns / 1000, ns % 1000);
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

/// An open span; records itself into the tracer when dropped.
#[must_use = "a span measures nothing unless it lives across the work"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: String,
    args: Vec<(String, String)>,
    tid: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// Appends an arg discovered mid-span (e.g. a stat computed by the
    /// work the span measures). Recorded alongside the eager args.
    pub fn arg(&mut self, key: &str, value: &str) {
        self.args.push((key.to_string(), value.to_string()));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_ns = self.tracer.clock.now_ns();
        self.tracer.finish(SpanRecord {
            name: std::mem::take(&mut self.name),
            args: std::mem::take(&mut self.args),
            tid: self.tid,
            start_ns: self.start_ns,
            end_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_spans_are_exact() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::with_clock(clock.clone());
        {
            let _outer = tracer.span("learn_suffix", &[("suffix", "example.com")]);
            clock.advance(500);
            {
                let _inner = tracer.span("generate", &[("suffix", "example.com")]);
                clock.advance(1_500);
            }
            clock.advance(250);
        }
        let spans = tracer.records();
        assert_eq!(spans.len(), 2);
        // Inner finishes first (drop order).
        assert_eq!(spans[0].name, "generate");
        assert_eq!(spans[0].start_ns, 500);
        assert_eq!(spans[0].duration_ns(), 1_500);
        assert_eq!(spans[1].name, "learn_suffix");
        assert_eq!(spans[1].start_ns, 0);
        assert_eq!(spans[1].duration_ns(), 2_250);
        // Containment: the viewer nests these without parent ids.
        assert!(spans[1].start_ns <= spans[0].start_ns);
        assert!(spans[0].end_ns <= spans[1].end_ns);
    }

    #[test]
    fn chrome_json_shape() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::with_clock(clock.clone());
        {
            let _s = tracer.span("merge", &[("suffix", "a\"b.nz")]);
            clock.advance(2_500);
        }
        let json = tracer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"name\":\"merge\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":0,\"dur\":2.5"), "{json}");
        assert!(json.contains("\"args\":{\"suffix\":\"a\\\"b.nz\"}"), "{json}");
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_500), "1.5");
        assert_eq!(micros(1_501), "1.501");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(2_250), "2.25");
    }

    #[test]
    fn wall_clock_is_monotone_nonzero() {
        let tracer = Tracer::new();
        {
            let _s = tracer.span("work", &[]);
            // A real (if tiny) amount of work.
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let spans = tracer.records();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }

    #[test]
    fn late_args_are_recorded_with_eager_ones() {
        let tracer = Tracer::new();
        {
            let mut g = tracer.span("work", &[("eager", "1")]);
            g.arg("late", "2");
        }
        let spans = tracer.records();
        assert_eq!(
            spans[0].args,
            vec![("eager".to_string(), "1".to_string()), ("late".to_string(), "2".to_string())]
        );
    }

    #[test]
    fn spans_collect_across_threads() {
        let tracer = Tracer::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = tracer.span("worker", &[]);
                });
            }
        });
        assert_eq!(tracer.len(), 4);
    }
}
