//! # hoiho-obs — observability for the learner and the serving tier
//!
//! Std-only, dependency-free (per the workspace's hermetic-build
//! policy), and cheap enough for the serving hot path:
//!
//! * [`metrics`] — a metrics registry of lock-free atomic counters,
//!   gauges, and fixed-bucket log-scale latency histograms. Handles
//!   are `Arc`-backed: registration takes a mutex once, after which
//!   every update is a single relaxed atomic operation. The whole
//!   registry renders to Prometheus-style text exposition
//!   ([`Registry::render`]), which the serve protocol's `METRICS`
//!   verb ships over the wire.
//! * [`trace`] — hierarchical tracing spans over a seedable-clock
//!   abstraction ([`Clock`]): production code uses [`WallClock`],
//!   tests pin time with [`ManualClock`] so recorded durations are
//!   deterministic. Finished spans render as Chrome trace-event JSON
//!   ([`Tracer::to_chrome_json`]) loadable in `chrome://tracing` /
//!   Perfetto; the learner emits one span per pipeline phase per
//!   suffix through `hoiho learn --trace`.
//! * [`events`] — a structured JSONL event log backed by a bounded
//!   in-memory ring buffer: slow queries, shard reloads, admin
//!   refusals. The serve protocol's `EVENTS [n]` verb dumps the tail.
//!
//! [`Obs`] bundles one registry, one event log, and the slow-query
//! threshold into the unit the server, the shard router, and the
//! binary share — so `METRICS` on a clustered server reports the
//! protocol layer and the cache/shard layer out of one document.
//!
//! Overhead budget: an instrumented hot-path operation adds one or two
//! relaxed atomic RMWs (&lt; ~5 ns each); nothing on the hot path takes
//! a lock or allocates. The acceptance bar (DESIGN.md §7d) is ≤ 5% on
//! the `serve/extract_large` and `cluster` bench medians.

pub mod events;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod span;
pub mod trace;

pub use events::{Event, EventLog};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry};
pub use profile::{Phase, PhaseCell, Profiler};
pub use slo::{Objective, SloEngine, SloSnapshot, SloStatus};
pub use span::{Layer, ReqSpan, Sampler, SpanHandle, SpanRing, TraceCtx};
pub use trace::{Clock, ManualClock, SpanGuard, Tracer, WallClock};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Default slow-query threshold: requests slower than this land in the
/// event log.
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(100);

/// Default event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One observability context: a metrics registry, an event log, the
/// request-tracing pieces (span ring + sampler), the sampling
/// profiler, the SLO engine, and the slow-query threshold. The server
/// and the shard router each take an `Arc<Obs>`; handing them the
/// *same* one merges their metrics into a single `METRICS` document
/// and their spans into one trace tree per request (what the
/// `hoiho-serve` binary does).
pub struct Obs {
    registry: Registry,
    events: EventLog,
    spans: SpanRing,
    sampler: Sampler,
    profiler: Profiler,
    slo: SloEngine,
    slow_ns: AtomicU64,
}

impl Obs {
    /// A fresh context with the default event capacity and slow-query
    /// threshold. Trace sampling starts disabled; enable it with
    /// `obs.sampler().configure(every, seed)`.
    pub fn new() -> Obs {
        Obs::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A fresh context whose event ring holds at most `capacity`
    /// events.
    pub fn with_event_capacity(capacity: usize) -> Obs {
        Obs {
            registry: Registry::new(),
            events: EventLog::new(capacity),
            spans: SpanRing::new(span::DEFAULT_SPAN_CAPACITY),
            sampler: Sampler::disabled(),
            profiler: Profiler::new(),
            slo: SloEngine::new(),
            slow_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD.as_nanos() as u64),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The request-span ring (the `TRACES` verb dumps it).
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// The request sampler (disabled by default).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The sampling profiler (the `PROFILE` verb renders it).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The SLO engine (the `SLO` verb reports it).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Requests at least this slow are recorded as `slow_query` events.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Reconfigures the slow-query threshold (settable live; the
    /// serving loop reads it per request).
    pub fn set_slow_threshold(&self, d: Duration) {
        self.slow_ns.store(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

/// The process-global context, for call sites with no better scope
/// (CLI one-shots). Servers and routers prefer an explicitly shared
/// `Arc<Obs>` so tests can account for their traffic exactly.
pub fn global() -> &'static Arc<Obs> {
    static GLOBAL: OnceLock<Arc<Obs>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Obs::new()))
}

/// Renders `s` as a JSON string literal (shared by the trace and event
/// renderers).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_defaults_and_threshold() {
        let obs = Obs::new();
        assert_eq!(obs.slow_threshold_ns(), DEFAULT_SLOW_THRESHOLD.as_nanos() as u64);
        obs.set_slow_threshold(Duration::from_micros(5));
        assert_eq!(obs.slow_threshold_ns(), 5_000);
        assert_eq!(obs.events().len(), 0);
    }

    #[test]
    fn global_is_one_instance() {
        let a = Arc::clone(global());
        let b = Arc::clone(global());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\n\t\u{1}"), "\"x\\n\\t\\u0001\"");
    }
}
