//! Declarative service-level objectives evaluated from the metrics
//! registry.
//!
//! An objective file is line-based (comments `#`, blank lines ok):
//!
//! ```text
//! # hoiho-slo 1
//! slo p99_ms max 500
//! slo error_rate max 0.05
//! slo cache_hit_rate min 0.10 cache-effectiveness
//! ```
//!
//! `slo <metric> <max|min> <threshold> [name]` — metrics are
//! `p50_ms`/`p90_ms`/`p99_ms`/`max_ms` (request latency quantiles,
//! milliseconds), `error_rate` (protocol errors over requests), and
//! `cache_hit_rate` (router cache hits over probes). `p99_batch_ms`
//! and `hit_rate` parse as aliases.
//!
//! **Burn rate** is error-budget consumption speed: for a `max` rate
//! objective, `value / threshold` (1.0 = consuming budget exactly as
//! fast as allowed); for a `min` rate objective the budget is the
//! allowed shortfall, `(1 - value) / (1 - threshold)`. The server-side
//! [`SloEngine`] keeps a ring of periodic registry snapshots; because
//! histogram buckets and counters only grow, the difference of two
//! snapshots *is* the traffic of that window, so the `SLO` verb
//! reports burn over 10s/60s/300s windows alongside the
//! process-lifetime value (the multi-window pattern: a fast window
//! catches a spike, a slow window confirms it is sustained). Breach is
//! judged on the lifetime value; windows are diagnostic.
//!
//! Loadgen evaluates the same objectives client-side over its own
//! merged run histogram (`--slo FILE` exits nonzero on breach); there
//! the run is the single window.

use crate::metrics::{quantile_from_counts, Registry, BUCKETS};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Registry families the server-side evaluation reads.
pub const METRIC_LATENCY: &str = "hoiho_request_latency_ns";
pub const METRIC_REQUESTS: &str = "hoiho_requests_total";
pub const METRIC_ERRORS: &str = "hoiho_protocol_errors_total";
pub const METRIC_CACHE_HITS: &str = "hoiho_cache_hits_total";
pub const METRIC_CACHE_MISSES: &str = "hoiho_cache_misses_total";

/// Diagnostic burn-rate windows: `(label, width in ns)`.
pub const SLO_WINDOWS: [(&str, u64); 3] =
    [("10s", 10_000_000_000), ("60s", 60_000_000_000), ("300s", 300_000_000_000)];

/// Maximum retained snapshots (at the server's ~0.3 s tick this covers
/// the widest window with room to spare).
pub const MAX_SNAPSHOTS: usize = 1200;

/// What an objective measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloMetric {
    /// Request latency quantiles / max, in milliseconds.
    P50Ms,
    P90Ms,
    P99Ms,
    MaxMs,
    /// Protocol errors over (requests + errors), in [0,1].
    ErrorRate,
    /// Cache hits over probes, in [0,1].
    CacheHitRate,
}

impl SloMetric {
    /// Canonical metric name.
    pub fn name(self) -> &'static str {
        match self {
            SloMetric::P50Ms => "p50_ms",
            SloMetric::P90Ms => "p90_ms",
            SloMetric::P99Ms => "p99_ms",
            SloMetric::MaxMs => "max_ms",
            SloMetric::ErrorRate => "error_rate",
            SloMetric::CacheHitRate => "cache_hit_rate",
        }
    }

    /// Parses a metric name (canonical names plus aliases).
    pub fn parse(s: &str) -> Option<SloMetric> {
        Some(match s {
            "p50_ms" | "p50_batch_ms" => SloMetric::P50Ms,
            "p90_ms" | "p90_batch_ms" => SloMetric::P90Ms,
            "p99_ms" | "p99_batch_ms" => SloMetric::P99Ms,
            "max_ms" => SloMetric::MaxMs,
            "error_rate" => SloMetric::ErrorRate,
            "cache_hit_rate" | "hit_rate" => SloMetric::CacheHitRate,
            _ => return None,
        })
    }
}

/// Whether the threshold is a ceiling or a floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Max,
    Min,
}

impl Bound {
    /// `"max"` / `"min"`.
    pub fn name(self) -> &'static str {
        match self {
            Bound::Max => "max",
            Bound::Min => "min",
        }
    }
}

/// One declared objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Display name (defaults to the metric name).
    pub name: String,
    pub metric: SloMetric,
    pub bound: Bound,
    pub threshold: f64,
}

/// Parses an objective file (module-level grammar). Errors carry
/// 1-based line numbers.
pub fn parse_objectives(text: &str) -> Result<Vec<Objective>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", i + 1);
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("slo") => {}
            Some(other) => return Err(err(format!("expected `slo`, got {other:?}"))),
            None => unreachable!("blank lines filtered above"),
        }
        let metric_s = tok.next().ok_or_else(|| err("missing metric".into()))?;
        let metric = SloMetric::parse(metric_s)
            .ok_or_else(|| err(format!("unknown metric {metric_s:?}")))?;
        let bound = match tok.next() {
            Some("max") => Bound::Max,
            Some("min") => Bound::Min,
            Some(other) => return Err(err(format!("expected max|min, got {other:?}"))),
            None => return Err(err("missing max|min".into())),
        };
        let thr_s = tok.next().ok_or_else(|| err("missing threshold".into()))?;
        let threshold: f64 =
            thr_s.parse().map_err(|e| err(format!("bad threshold {thr_s:?}: {e}")))?;
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(err(format!("threshold must be finite and ≥ 0, got {thr_s}")));
        }
        let name = tok.next().unwrap_or(metric.name()).to_string();
        if let Some(extra) = tok.next() {
            return Err(err(format!("trailing token {extra:?}")));
        }
        out.push(Objective { name, metric, bound, threshold });
    }
    Ok(out)
}

/// Generous built-in defaults: a server that answers at all passes.
pub fn default_objectives() -> Vec<Objective> {
    vec![
        Objective {
            name: "p99_ms".into(),
            metric: SloMetric::P99Ms,
            bound: Bound::Max,
            threshold: 500.0,
        },
        Objective {
            name: "error_rate".into(),
            metric: SloMetric::ErrorRate,
            bound: Bound::Max,
            threshold: 0.05,
        },
    ]
}

/// The measured traffic of one window: subtractable raw tallies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloWindowData {
    /// Raw latency bucket counts (length [`BUCKETS`]; empty = no
    /// latency family).
    pub latency_counts: Vec<u64>,
    /// Exact latency max in ns (0 when unknown — windowed data falls
    /// back to the p100 bucket bound).
    pub latency_max_ns: u64,
    pub errors: u64,
    pub requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl SloWindowData {
    /// The window `newer - older` (both must come from the same
    /// registry; counters only grow, so saturating subtraction is
    /// exact). The windowed max is unknown, so it is left 0.
    pub fn delta(older: &SloWindowData, newer: &SloWindowData) -> SloWindowData {
        let n = newer.latency_counts.len().max(older.latency_counts.len());
        let at = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        SloWindowData {
            latency_counts: (0..n)
                .map(|i| at(&newer.latency_counts, i).saturating_sub(at(&older.latency_counts, i)))
                .collect(),
            latency_max_ns: 0,
            errors: newer.errors.saturating_sub(older.errors),
            requests: newer.requests.saturating_sub(older.requests),
            cache_hits: newer.cache_hits.saturating_sub(older.cache_hits),
            cache_misses: newer.cache_misses.saturating_sub(older.cache_misses),
        }
    }

    fn latency_ms(&self, q: f64) -> Option<f64> {
        if self.latency_counts.iter().sum::<u64>() == 0 {
            return None;
        }
        let ns = if q >= 1.0 && self.latency_max_ns > 0 {
            self.latency_max_ns
        } else {
            quantile_from_counts(&self.latency_counts, q)
        };
        Some(ns as f64 / 1_000_000.0)
    }

    /// The metric's value over this window (`None` when no traffic of
    /// that kind was observed — reported `n/a`, never a breach).
    pub fn value_of(&self, metric: SloMetric) -> Option<f64> {
        match metric {
            SloMetric::P50Ms => self.latency_ms(0.5),
            SloMetric::P90Ms => self.latency_ms(0.9),
            SloMetric::P99Ms => self.latency_ms(0.99),
            SloMetric::MaxMs => self.latency_ms(1.0),
            SloMetric::ErrorRate => {
                let total = self.requests + self.errors;
                if total == 0 {
                    None
                } else {
                    Some(self.errors as f64 / total as f64)
                }
            }
            SloMetric::CacheHitRate => {
                let probes = self.cache_hits + self.cache_misses;
                if probes == 0 {
                    None
                } else {
                    Some(self.cache_hits as f64 / probes as f64)
                }
            }
        }
    }
}

/// One timestamped registry snapshot.
#[derive(Debug, Clone)]
pub struct SloSnapshot {
    pub ts_ns: u64,
    pub data: SloWindowData,
}

/// Captures the families the SLO engine evaluates from `reg`.
pub fn snapshot_registry(reg: &Registry, now_ns: u64) -> SloSnapshot {
    let (latency_counts, latency_max_ns) = match reg.histogram_merged(METRIC_LATENCY) {
        Some(h) => (h.bucket_counts(), h.max()),
        None => (vec![0; BUCKETS], 0),
    };
    SloSnapshot {
        ts_ns: now_ns,
        data: SloWindowData {
            latency_counts,
            latency_max_ns,
            errors: reg.counter_sum(METRIC_ERRORS),
            requests: reg.counter_sum(METRIC_REQUESTS),
            cache_hits: reg.counter_sum(METRIC_CACHE_HITS),
            cache_misses: reg.counter_sum(METRIC_CACHE_MISSES),
        },
    }
}

/// Burn rate of `value` against the objective (None when undefined,
/// e.g. a zero budget).
pub fn burn_rate(bound: Bound, threshold: f64, value: f64) -> Option<f64> {
    match bound {
        Bound::Max => {
            if threshold > 0.0 {
                Some(value / threshold)
            } else {
                None
            }
        }
        Bound::Min => {
            if threshold < 1.0 {
                Some((1.0 - value) / (1.0 - threshold))
            } else {
                None
            }
        }
    }
}

/// One objective's evaluation.
#[derive(Debug, Clone)]
pub struct SloStatus {
    pub objective: Objective,
    /// Lifetime (or whole-run) value; `None` = no such traffic.
    pub value: Option<f64>,
    /// Lifetime burn rate.
    pub burn: Option<f64>,
    /// Per-window burn rates, `(label, burn)`; `None` = window not yet
    /// covered or no traffic in it.
    pub windows: Vec<(&'static str, Option<f64>)>,
    /// True when the lifetime value violates the bound.
    pub breach: bool,
}

impl SloStatus {
    /// `ok` / `breach` / `n/a`.
    pub fn status(&self) -> &'static str {
        if self.breach {
            "breach"
        } else if self.value.is_none() {
            "n/a"
        } else {
            "ok"
        }
    }
}

fn fmt_f64(v: f64) -> String {
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Evaluates `objectives` against the overall window, plus diagnostic
/// burn rates per extra window.
pub fn evaluate(
    objectives: &[Objective],
    overall: &SloWindowData,
    windows: &[(&'static str, Option<SloWindowData>)],
) -> Vec<SloStatus> {
    objectives
        .iter()
        .map(|o| {
            let value = overall.value_of(o.metric);
            let breach = match value {
                None => false,
                Some(v) => match o.bound {
                    Bound::Max => v > o.threshold,
                    Bound::Min => v < o.threshold,
                },
            };
            let burn = value.and_then(|v| burn_rate(o.bound, o.threshold, v));
            let windows = windows
                .iter()
                .map(|(label, data)| {
                    let wburn = data.as_ref().and_then(|d| {
                        d.value_of(o.metric).and_then(|v| burn_rate(o.bound, o.threshold, v))
                    });
                    (*label, wburn)
                })
                .collect();
            SloStatus { objective: o.clone(), value, burn, windows, breach }
        })
        .collect()
}

/// Renders statuses as the tab-separated `SLO` verb body (one line per
/// objective, no trailing terminator).
pub fn render_statuses(statuses: &[SloStatus]) -> String {
    let mut out = String::new();
    for s in statuses {
        out.push_str(&format!(
            "slo\t{}\tmetric={}\tbound={}\ttarget={}\tvalue={}\tstatus={}\tburn={}",
            s.objective.name,
            s.objective.metric.name(),
            s.objective.bound.name(),
            fmt_f64(s.objective.threshold),
            s.value.map(fmt_f64).unwrap_or_else(|| "-".into()),
            s.status(),
            s.burn.map(fmt_f64).unwrap_or_else(|| "-".into()),
        ));
        for (label, burn) in &s.windows {
            out.push_str(&format!(
                "\tburn_{label}={}",
                burn.map(fmt_f64).unwrap_or_else(|| "-".into())
            ));
        }
        out.push('\n');
    }
    out
}

/// The server-side engine: declared objectives plus a bounded history
/// of registry snapshots (fed by the server's watcher thread).
pub struct SloEngine {
    objectives: Mutex<Vec<Objective>>,
    history: Mutex<VecDeque<SloSnapshot>>,
}

impl SloEngine {
    /// An engine with the generous [`default_objectives`].
    pub fn new() -> SloEngine {
        SloEngine {
            objectives: Mutex::new(default_objectives()),
            history: Mutex::new(VecDeque::new()),
        }
    }

    /// Replaces the objective set.
    pub fn set_objectives(&self, objectives: Vec<Objective>) {
        *self.objectives.lock().expect("slo lock poisoned") = objectives;
    }

    /// The current objective set.
    pub fn objectives(&self) -> Vec<Objective> {
        self.objectives.lock().expect("slo lock poisoned").clone()
    }

    /// Appends one snapshot (bounded by [`MAX_SNAPSHOTS`]).
    pub fn tick(&self, snap: SloSnapshot) {
        let mut h = self.history.lock().expect("slo lock poisoned");
        if h.len() == MAX_SNAPSHOTS {
            h.pop_front();
        }
        h.push_back(snap);
    }

    /// Retained snapshots.
    pub fn history_len(&self) -> usize {
        self.history.lock().expect("slo lock poisoned").len()
    }

    /// Evaluates the objectives: lifetime values from `current`,
    /// windowed burn from the newest snapshot at least as old as each
    /// window.
    pub fn report(&self, current: &SloSnapshot) -> Vec<SloStatus> {
        let history = self.history.lock().expect("slo lock poisoned");
        let windows: Vec<(&'static str, Option<SloWindowData>)> = SLO_WINDOWS
            .iter()
            .map(|&(label, width)| {
                // A window only reports once the clock has covered it
                // in full; the base is the newest snapshot at or
                // before the cutoff (tightest full coverage).
                let base = if current.ts_ns >= width {
                    let cutoff = current.ts_ns - width;
                    history.iter().rev().find(|s| s.ts_ns <= cutoff)
                } else {
                    None
                };
                (label, base.map(|b| SloWindowData::delta(&b.data, &current.data)))
            })
            .collect();
        drop(history);
        evaluate(&self.objectives.lock().expect("slo lock poisoned"), &current.data, &windows)
    }
}

impl Default for SloEngine {
    fn default() -> SloEngine {
        SloEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn parses_objectives_with_aliases_and_names() {
        let text = "# hoiho-slo 1\n\nslo p99_batch_ms max 250\nslo error_rate max 0.05\n\
                    slo hit_rate min 0.2 cache-effectiveness\n";
        let objs = parse_objectives(text).unwrap();
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0].metric, SloMetric::P99Ms);
        assert_eq!(objs[0].bound, Bound::Max);
        assert_eq!(objs[0].threshold, 250.0);
        assert_eq!(objs[0].name, "p99_ms", "name defaults to the canonical metric");
        assert_eq!(objs[2].metric, SloMetric::CacheHitRate);
        assert_eq!(objs[2].bound, Bound::Min);
        assert_eq!(objs[2].name, "cache-effectiveness");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(parse_objectives("slo nope max 1").unwrap_err().starts_with("line 1:"));
        assert!(parse_objectives("\nobjective p99_ms max 1").unwrap_err().starts_with("line 2:"));
        assert!(parse_objectives("slo p99_ms maybe 1").unwrap_err().contains("max|min"));
        assert!(parse_objectives("slo p99_ms max xyz").unwrap_err().contains("bad threshold"));
        assert!(parse_objectives("slo p99_ms max -1").unwrap_err().contains("≥ 0"));
        assert!(parse_objectives("slo p99_ms max 1 a b").unwrap_err().contains("trailing"));
    }

    fn window(lat_ns: &[u64], errors: u64, requests: u64, hits: u64, misses: u64) -> SloWindowData {
        let mut counts = vec![0u64; BUCKETS];
        let mut max = 0;
        for &v in lat_ns {
            counts[if v <= 1 { 0 } else { (63 - v.leading_zeros()) as usize }] += 1;
            max = max.max(v);
        }
        SloWindowData {
            latency_counts: counts,
            latency_max_ns: max,
            errors,
            requests,
            cache_hits: hits,
            cache_misses: misses,
        }
    }

    #[test]
    fn values_and_breaches() {
        // 10 requests at ~1ms, one protocol error, 3/4 cache hits.
        let w = window(&[1_000_000; 10], 1, 10, 3, 1);
        assert!(w.value_of(SloMetric::P99Ms).unwrap() < 3.0);
        assert!((w.value_of(SloMetric::ErrorRate).unwrap() - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(w.value_of(SloMetric::CacheHitRate), Some(0.75));
        assert_eq!(w.value_of(SloMetric::MaxMs), Some(1.0));

        let objs = vec![
            Objective {
                name: "lat".into(),
                metric: SloMetric::P99Ms,
                bound: Bound::Max,
                threshold: 0.5,
            },
            Objective {
                name: "err".into(),
                metric: SloMetric::ErrorRate,
                bound: Bound::Max,
                threshold: 0.5,
            },
            Objective {
                name: "hit".into(),
                metric: SloMetric::CacheHitRate,
                bound: Bound::Min,
                threshold: 0.9,
            },
        ];
        let st = evaluate(&objs, &w, &[]);
        assert!(st[0].breach, "p99 ~2ms > 0.5ms must breach");
        assert!(!st[1].breach);
        assert!(st[2].breach, "hit rate 0.75 < 0.9 must breach");
        assert_eq!(st[0].status(), "breach");
        assert_eq!(st[1].status(), "ok");
        // Burn: err 1/11 over budget 0.5 ⇒ ~0.18; hit shortfall
        // 0.25 over allowed 0.1 ⇒ 2.5.
        assert!((st[1].burn.unwrap() - (1.0 / 11.0) / 0.5).abs() < 1e-12);
        assert!((st[2].burn.unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_traffic_is_na_not_breach() {
        let w = SloWindowData::default();
        let objs = default_objectives();
        let st = evaluate(&objs, &w, &[]);
        assert!(st.iter().all(|s| !s.breach));
        assert!(st.iter().all(|s| s.status() == "n/a"));
        let text = render_statuses(&st);
        assert!(text.contains("value=-"), "{text}");
        assert!(text.contains("status=n/a"), "{text}");
    }

    #[test]
    fn windowed_burn_from_snapshot_deltas() {
        let engine = SloEngine::new();
        engine.set_objectives(vec![Objective {
            name: "err".into(),
            metric: SloMetric::ErrorRate,
            bound: Bound::Max,
            threshold: 0.1,
        }]);
        // t=0: clean history. t=15s: 10 ok requests. t=30s: 10 more
        // requests, all errors.
        engine.tick(SloSnapshot { ts_ns: 0, data: window(&[], 0, 0, 0, 0) });
        engine.tick(SloSnapshot { ts_ns: 15_000_000_000, data: window(&[], 0, 10, 0, 0) });
        let current = SloSnapshot { ts_ns: 30_000_000_000, data: window(&[], 10, 10, 0, 0) };
        let st = &engine.report(&current)[0];
        // Lifetime: 10 errors / 20 total = 0.5 ⇒ breach, burn 5.
        assert!(st.breach);
        assert!((st.burn.unwrap() - 5.0).abs() < 1e-9);
        // 10s window: base = t=15s snapshot ⇒ the 10 errors alone ⇒
        // rate 1.0, burn 10.
        let w10 = st.windows.iter().find(|(l, _)| *l == "10s").unwrap().1.unwrap();
        assert!((w10 - 10.0).abs() < 1e-9);
        // 60s/300s: no snapshot old enough ⇒ None.
        assert!(st.windows.iter().find(|(l, _)| *l == "60s").unwrap().1.is_none());
    }

    #[test]
    fn snapshot_reads_registry_families() {
        let reg = Registry::new();
        reg.counter(METRIC_REQUESTS, &[("verb", "query"), ("outcome", "hit")]).add(5);
        reg.counter(METRIC_REQUESTS, &[("verb", "batch"), ("outcome", "ok")]).add(2);
        reg.counter(METRIC_ERRORS, &[]).add(1);
        reg.histogram(METRIC_LATENCY, &[]).observe(2_000_000);
        reg.counter(METRIC_CACHE_HITS, &[("shard", "0")]).add(3);
        let snap = snapshot_registry(&reg, 99);
        assert_eq!(snap.ts_ns, 99);
        assert_eq!(snap.data.requests, 7);
        assert_eq!(snap.data.errors, 1);
        assert_eq!(snap.data.cache_hits, 3);
        assert_eq!(snap.data.latency_counts.iter().sum::<u64>(), 1);
        assert_eq!(snap.data.latency_max_ns, 2_000_000);
    }

    #[test]
    fn snapshot_history_is_bounded() {
        let engine = SloEngine::new();
        for i in 0..(MAX_SNAPSHOTS + 10) {
            engine.tick(SloSnapshot { ts_ns: i as u64, data: SloWindowData::default() });
        }
        assert_eq!(engine.history_len(), MAX_SNAPSHOTS);
    }

    #[test]
    fn render_is_greppable() {
        let w = window(&[1_000_000; 4], 0, 4, 0, 0);
        let st = evaluate(&default_objectives(), &w, &[("10s", None)]);
        let text = render_statuses(&st);
        assert!(text.contains("slo\tp99_ms\tmetric=p99_ms\tbound=max\ttarget=500"), "{text}");
        assert!(text.contains("status=ok"), "{text}");
        assert!(text.contains("burn_10s=-"), "{text}");
    }
}
