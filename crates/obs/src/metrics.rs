//! The metrics registry: named, labelled counters, gauges, and
//! log-scale latency histograms, rendered as Prometheus-style text.
//!
//! ## Cost model
//!
//! Registration (`counter`/`gauge`/`histogram`) takes the registry
//! mutex and allocates; it is meant to run once, at construction time,
//! with the returned handle cached by the instrumented component.
//! Updates through a handle are single relaxed atomic RMWs — no locks,
//! no allocation — so handles are safe on the serving hot path and can
//! be shared freely across threads (they are `Arc`s).
//!
//! Re-registering the same `(name, labels)` returns a handle to the
//! *same* underlying series, so independently constructed components
//! (say, a router rebuilt on reload) keep accumulating into one line.
//!
//! ## Histograms
//!
//! Fixed-bucket base-2 log scale: bucket *i* counts values in
//! `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0), up to
//! [`BUCKETS`] buckets (the last one is unbounded). Quantiles are
//! computed exactly *from the buckets*: `quantile(q)` walks the
//! cumulative counts to the nearest-rank bucket and reports that
//! bucket's upper bound — deterministic, mergeable across threads and
//! shards ([`Histogram::merge_from`]), and never worse than 2× off the
//! true value. The maximum is tracked exactly on the side.
//!
//! ## Exposition grammar
//!
//! [`Registry::render`] emits, per family in name order:
//!
//! ```text
//! # TYPE <name> counter|gauge|histogram
//! <name>{<k>="<v>",...} <integer>                  (counter/gauge)
//! <name>_bucket{...,le="<bound>"} <cumulative>     (histogram; only
//! <name>_bucket{...,le="+Inf"} <count>              non-empty buckets,
//! <name>_sum{...} <sum>                             +Inf always last)
//! <name>_count{...} <count>
//! <name>_max{...} <max>
//! ```
//!
//! Labels are sorted by key; values escape `\`, `"`, and newline; the
//! brace block is omitted when a series has no labels. Bucket lines
//! are cumulative, so they are non-decreasing and the `+Inf` line
//! equals `_count` — the invariants the exposition tests parse for.
//! `_max` is a non-standard extension carrying the exact maximum.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. `2^47` ns ≈ 39 hours — anything
/// slower lands in the unbounded last bucket.
pub const BUCKETS: usize = 48;

/// What a registered family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone non-negative count.
    Counter,
    /// Point-in-time signed value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (for tests and local
    /// accumulation).
    pub fn unregistered() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (settable, signed).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn unregistered() -> Gauge {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-scale latency histogram handle. Values are nanoseconds by
/// convention (the exposition renders raw integers either way).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

/// Bucket index for a value: `floor(log2(v))`, clamped to the table.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`None` for the unbounded last
/// bucket).
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some((1u64 << (i + 1)) - 1)
    }
}

/// Nearest-rank quantile over raw per-bucket counts (as produced by
/// [`Histogram::bucket_counts`], or a windowed difference of two such
/// vectors). Reports the upper bound of the bucket holding the
/// `ceil(q·count)`-th observation; the unbounded last bucket reports
/// its lower bound (no exact max is available for a window). Returns 0
/// when empty.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        cum += n;
        if n > 0 && cum >= rank {
            return bucket_bound(i).unwrap_or(1u64 << (BUCKETS - 1));
        }
    }
    bucket_bound(counts.len().saturating_sub(1)).unwrap_or(1u64 << (BUCKETS - 1))
}

impl Histogram {
    /// A histogram not attached to any registry — loadgen builds one
    /// per connection and merges them.
    pub fn unregistered() -> Histogram {
        Histogram(Arc::new(HistInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let h = &self.0;
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds every observation of `other` into `self` — bucket counts,
    /// count, sum, and max all combine exactly, so per-thread (or
    /// per-shard) histograms fold into one with no loss.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(&other.0.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile from the buckets: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th observation, except that
    /// the highest non-empty bucket reports the exact maximum (so
    /// `quantile(1.0) == max()`). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        let count = snap.count;
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        for (i, &(_, cum)) in snap.buckets.iter().enumerate() {
            if cum >= rank {
                // The last non-empty bucket's bound would overshoot the
                // true tail; the tracked max is exact there.
                if i + 1 == snap.buckets.len() {
                    return snap.max;
                }
                return snap.buckets[i].0.unwrap_or(snap.max);
            }
        }
        snap.max
    }

    /// Raw per-bucket counts (length [`BUCKETS`], zeros included).
    /// Unlike [`Histogram::snapshot`] this is subtractable: bucket
    /// counts only grow, so `new - old` is the histogram of a window —
    /// what the SLO engine's burn-rate math runs on.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// A consistent-enough point-in-time copy (relaxed loads; exact
    /// once writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                buckets.push((bucket_bound(i), cum));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// Point-in-time histogram state: non-empty buckets as
/// `(upper_bound, cumulative_count)` (bound `None` = unbounded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets, ascending, cumulative.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact maximum.
    pub max: u64,
}

/// One registered series.
#[derive(Debug, Clone)]
enum Series {
    C(Counter),
    G(Gauge),
    H(Histogram),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    /// Rendered label block (`{a="b",...}` or empty) → series.
    series: BTreeMap<String, Series>,
}

/// The metrics registry: a mutex-guarded name→family table handing out
/// lock-free handles.
#[derive(Debug)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { families: Mutex::new(BTreeMap::new()) }
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered with a different kind, or if a
    /// name/label fails validation (see [`Registry::render`] grammar).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, labels, MetricKind::Counter, || Series::C(Counter::unregistered()))
        {
            Series::C(c) => c,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, labels, MetricKind::Gauge, || Series::G(Gauge::unregistered())) {
            Series::G(g) => g,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Gets or creates the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, labels, MetricKind::Histogram, || {
            Series::H(Histogram::unregistered())
        }) {
            Series::H(h) => h,
            _ => unreachable!("kind checked by series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Series,
    ) -> Series {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let label_key = render_labels(labels, None);
        let mut families = self.families.lock().expect("registry lock poisoned");
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| Family { kind, series: BTreeMap::new() });
        assert!(
            family.kind == kind,
            "metric {name} already registered as a {}, requested as a {}",
            family.kind.label(),
            kind.label()
        );
        family.series.entry(label_key).or_insert_with(make).clone()
    }

    /// Sums every counter series of the family `name`, across all
    /// label sets (0 when the family is absent or not a counter
    /// family). This is how the SLO engine reads e.g.
    /// `hoiho_requests_total` without enumerating verbs/outcomes.
    pub fn counter_sum(&self, name: &str) -> u64 {
        let families = self.families.lock().expect("registry lock poisoned");
        let Some(family) = families.get(name) else { return 0 };
        family
            .series
            .values()
            .map(|s| match s {
                Series::C(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Merges every histogram series of the family `name` into one
    /// fresh unregistered histogram (`None` when the family is absent
    /// or not a histogram family). The merge is exact (bucket counts,
    /// count, sum, max all combine).
    pub fn histogram_merged(&self, name: &str) -> Option<Histogram> {
        let series: Vec<Series> = {
            let families = self.families.lock().expect("registry lock poisoned");
            let family = families.get(name)?;
            if family.kind != MetricKind::Histogram {
                return None;
            }
            family.series.values().cloned().collect()
        };
        let merged = Histogram::unregistered();
        for s in &series {
            if let Series::H(h) = s {
                merged.merge_from(h);
            }
        }
        Some(merged)
    }

    /// Renders the whole registry in the exposition grammar (module
    /// docs). Families appear in name order, series in label order —
    /// the output is deterministic for deterministic counter values.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.label());
            out.push('\n');
            for (labels, series) in &family.series {
                match series {
                    Series::C(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::G(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::H(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// Renders one histogram series: non-empty cumulative buckets, the
/// `+Inf` line, then `_sum`/`_count`/`_max`.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let snap = h.snapshot();
    let with_le = |bound: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{bound}\"}}")
        } else {
            // Splice le into the existing block, keeping it last.
            format!("{},le=\"{bound}\"}}", &labels[..labels.len() - 1])
        }
    };
    for &(bound, cum) in &snap.buckets {
        if let Some(b) = bound {
            out.push_str(&format!("{name}_bucket{} {cum}\n", with_le(&b.to_string())));
        }
    }
    out.push_str(&format!("{name}_bucket{} {}\n", with_le("+Inf"), snap.count));
    out.push_str(&format!("{name}_sum{labels} {}\n", snap.sum));
    out.push_str(&format!("{name}_count{labels} {}\n", snap.count));
    out.push_str(&format!("{name}_max{labels} {}\n", snap.max));
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — metric and label names.
fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders a sorted label block (`""` when empty). `extra` appends a
/// pre-rendered pair (used for `le`).
fn render_labels(labels: &[(&str, &str)], extra: Option<&str>) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    for w in pairs.windows(2) {
        assert!(w[0].0 != w[1].0, "duplicate label {:?}", w[0].0);
    }
    if pairs.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        assert!(valid_name(k), "invalid label name {k:?}");
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if let Some(e) = extra {
        if !pairs.is_empty() {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("hoiho_requests_total", &[("verb", "query"), ("outcome", "hit")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) — any order — is the same series.
        let c2 = r.counter("hoiho_requests_total", &[("outcome", "hit"), ("verb", "query")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("hoiho_shard_generation", &[("shard", "0")]);
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(0), Some(1));
        assert_eq!(bucket_bound(9), Some(1023));
        assert_eq!(bucket_bound(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_quantiles_from_buckets() {
        let h = Histogram::unregistered();
        // 90 fast (≤ 1023ns bucket), 9 medium, 1 slow.
        for _ in 0..90 {
            h.observe(1000);
        }
        for _ in 0..9 {
            h.observe(100_000);
        }
        h.observe(7_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 7_000_000);
        assert_eq!(h.quantile(0.50), 1023);
        assert_eq!(h.quantile(0.90), 1023);
        assert_eq!(h.quantile(0.99), (1 << 17) - 1); // 100_000 ∈ [2^16, 2^17)
        assert_eq!(h.quantile(1.0), 7_000_000, "p100 is the exact max");
        // The highest non-empty bucket reports the exact max.
        assert_eq!(h.quantile(0.995), 7_000_000);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::unregistered();
        let b = Histogram::unregistered();
        for v in [10, 20, 30] {
            a.observe(v);
        }
        for v in [1_000_000, 5] {
            b.observe(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 10 + 20 + 30 + 1_000_000 + 5);
        assert_eq!(a.max(), 1_000_000);
        let total: u64 = a
            .snapshot()
            .buckets
            .iter()
            .map(|&(_, cum)| cum)
            .last()
            .unwrap_or(0);
        assert_eq!(total, 5, "cumulative last bucket is the count");
    }

    #[test]
    fn render_shape_and_invariants() {
        let r = Registry::new();
        r.counter("b_total", &[("verb", "query")]).add(3);
        r.counter("b_total", &[("verb", "stats")]).add(1);
        r.gauge("a_gauge", &[]).set(-7);
        let h = r.histogram("lat_ns", &[("shard", "0")]);
        h.observe(100);
        h.observe(2000);
        h.observe(2000);
        let text = r.render();
        // Families in name order; gauge sorts before counter here.
        let a = text.find("# TYPE a_gauge gauge").expect("gauge family");
        let b = text.find("# TYPE b_total counter").expect("counter family");
        let l = text.find("# TYPE lat_ns histogram").expect("histogram family");
        assert!(a < b && b < l, "{text}");
        assert!(text.contains("a_gauge -7\n"), "{text}");
        assert!(text.contains("b_total{verb=\"query\"} 3\n"), "{text}");
        assert!(text.contains("b_total{verb=\"stats\"} 1\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{shard=\"0\",le=\"127\"} 1\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{shard=\"0\",le=\"2047\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{shard=\"0\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_sum{shard=\"0\"} 4100\n"), "{text}");
        assert!(text.contains("lat_ns_count{shard=\"0\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_max{shard=\"0\"} 2000\n"), "{text}");
    }

    #[test]
    fn label_escaping_and_empty_block() {
        let r = Registry::new();
        r.counter("c_total", &[("path", "a\"b\\c\nd")]).inc();
        r.counter("plain_total", &[]).inc();
        let text = r.render();
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
        assert!(text.contains("plain_total 1\n"), "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x_total", &[]);
        r.gauge("x_total", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("bad-name", &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        Registry::new().counter("ok_total", &[("a", "1"), ("a", "2")]);
    }

    #[test]
    fn counter_sum_crosses_label_sets() {
        let r = Registry::new();
        r.counter("req_total", &[("verb", "query")]).add(3);
        r.counter("req_total", &[("verb", "batch")]).add(4);
        r.gauge("g", &[]).set(9);
        assert_eq!(r.counter_sum("req_total"), 7);
        assert_eq!(r.counter_sum("absent_total"), 0);
        assert_eq!(r.counter_sum("g"), 0, "gauges don't sum as counters");
    }

    #[test]
    fn histogram_merged_folds_series() {
        let r = Registry::new();
        r.histogram("lat_ns", &[("shard", "0")]).observe(10);
        r.histogram("lat_ns", &[("shard", "1")]).observe(1000);
        let m = r.histogram_merged("lat_ns").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum(), 1010);
        assert_eq!(m.max(), 1000);
        assert!(r.histogram_merged("absent").is_none());
        r.counter("c_total", &[]);
        assert!(r.histogram_merged("c_total").is_none());
    }

    #[test]
    fn quantile_from_counts_matches_quantile() {
        let h = Histogram::unregistered();
        for v in [1u64, 5, 9, 100, 7000] {
            h.observe(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), BUCKETS);
        assert_eq!(counts.iter().sum::<u64>(), 5);
        // Every quantile except the tail matches (the tail estimates a
        // bucket bound instead of the exact tracked max).
        assert_eq!(quantile_from_counts(&counts, 0.5), h.quantile(0.5));
        assert_eq!(quantile_from_counts(&counts, 0.2), h.quantile(0.2));
        assert_eq!(quantile_from_counts(&counts, 1.0), bucket_bound(bucket_of(7000)).unwrap());
        assert_eq!(quantile_from_counts(&[], 0.5), 0);
        assert_eq!(quantile_from_counts(&[0, 0], 0.99), 0);
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let r = Registry::new();
        let h = r.histogram("t_ns", &[]);
        let c = r.counter("t_total", &[]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        let last = h.snapshot().buckets.last().map(|&(_, cum)| cum);
        assert_eq!(last, Some(4000));
    }
}
