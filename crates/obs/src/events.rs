//! Structured event log: a bounded in-memory ring buffer of
//! `(seq, ts, kind, fields)` records rendered as JSONL.
//!
//! Unlike metrics (aggregates) these are individual notable
//! occurrences: a query slower than the configured threshold, a shard
//! reload, a refused admin command. The ring keeps the most recent
//! `capacity` events; the monotone sequence number survives eviction,
//! so a reader can tell how many events it missed (`first_seq` of the
//! tail jumping past the last seen `seq`).
//!
//! Rendering is one JSON object per line, fields flattened alongside
//! the envelope:
//!
//! ```text
//! {"seq":12,"ts_ns":48211375,"kind":"slow_query","verb":"query","dur_ns":"151923000"}
//! ```

use crate::json_str;
use crate::trace::{Clock, WallClock};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-log sequence number, starting at 0; not reused
    /// when the ring evicts.
    pub seq: u64,
    /// Clock nanoseconds at record time.
    pub ts_ns: u64,
    /// Event kind (e.g. `slow_query`, `shard_reload`,
    /// `admin_refused`).
    pub kind: String,
    /// Flat string key/values.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    /// Envelope keys come first; field keys are emitted as-is, so
    /// callers should avoid `seq`/`ts_ns`/`kind` as field names.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"ts_ns\":{},\"kind\":{}",
            self.seq,
            self.ts_ns,
            json_str(&self.kind)
        );
        for (k, v) in &self.fields {
            out.push(',');
            out.push_str(&json_str(k));
            out.push(':');
            out.push_str(&json_str(v));
        }
        out.push('}');
        out
    }
}

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
}

/// The bounded event ring. All methods are thread-safe; recording
/// takes one short mutex (events are rare by design — the hot path
/// only records when something notable happened).
pub struct EventLog {
    inner: Mutex<Ring>,
    capacity: usize,
    clock: Arc<dyn Clock>,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events (capacity 0 is
    /// clamped to 1), timestamped by the real monotonic clock.
    pub fn new(capacity: usize) -> EventLog {
        EventLog::with_clock(capacity, Arc::new(WallClock::new()))
    }

    /// A log on an injected clock (tests pass a
    /// [`crate::ManualClock`]).
    pub fn with_clock(capacity: usize, clock: Arc<dyn Clock>) -> EventLog {
        EventLog {
            inner: Mutex::new(Ring { buf: VecDeque::new(), next_seq: 0 }),
            capacity: capacity.max(1),
            clock,
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    /// Returns the assigned sequence number.
    ///
    /// The timestamp is read *under* the ring lock, in the same
    /// critical section that assigns the sequence number — so dump
    /// order, sequence order, and timestamp order always agree, even
    /// under writer contention. (Reading the clock first looks
    /// harmless but lets two racing writers commit with inverted
    /// timestamps: A reads t=5, B reads t=6, B takes the lock first
    /// and seq 0 carries the *later* time.)
    pub fn record(&self, kind: &str, fields: &[(&str, &str)]) -> u64 {
        let mut ring = self.inner.lock().expect("event log lock poisoned");
        let ts_ns = self.clock.now_ns();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(Event {
            seq,
            ts_ns,
            kind: kind.to_string(),
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
        });
        seq
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log lock poisoned").buf.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (= next sequence number).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("event log lock poisoned").next_seq
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let ring = self.inner.lock().expect("event log lock poisoned");
        let skip = ring.buf.len().saturating_sub(n);
        ring.buf.iter().skip(skip).cloned().collect()
    }

    /// The most recent `n` events as JSONL (one object per line,
    /// oldest first, trailing newline after each line; empty string
    /// when there are none).
    pub fn render_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for e in self.tail(n) {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ManualClock;

    fn manual_log(capacity: usize) -> (Arc<ManualClock>, EventLog) {
        let clock = Arc::new(ManualClock::new());
        let log = EventLog::with_clock(capacity, clock.clone());
        (clock, log)
    }

    #[test]
    fn records_and_tails_in_order() {
        let (clock, log) = manual_log(8);
        assert_eq!(log.record("a", &[]), 0);
        clock.advance(10);
        assert_eq!(log.record("b", &[("k", "v")]), 1);
        let tail = log.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].kind, "a");
        assert_eq!(tail[0].ts_ns, 0);
        assert_eq!(tail[1].kind, "b");
        assert_eq!(tail[1].ts_ns, 10);
        assert_eq!(tail[1].fields, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(log.tail(1).len(), 1);
        assert_eq!(log.tail(1)[0].seq, 1);
    }

    #[test]
    fn ring_evicts_oldest_but_seq_survives() {
        let (_clock, log) = manual_log(3);
        for i in 0..5 {
            log.record("e", &[("i", &i.to_string())]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        let tail = log.tail(10);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_rendering() {
        let (clock, log) = manual_log(8);
        clock.advance(1_000);
        log.record("slow_query", &[("verb", "query"), ("dur_ns", "151923000")]);
        let jsonl = log.render_jsonl(10);
        assert_eq!(
            jsonl,
            "{\"seq\":0,\"ts_ns\":1000,\"kind\":\"slow_query\",\
             \"verb\":\"query\",\"dur_ns\":\"151923000\"}\n"
        );
        log.record("x", &[("msg", "a\"b")]);
        let jsonl = log.render_jsonl(10);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"msg\":\"a\\\"b\""), "{jsonl}");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let (_clock, log) = manual_log(0);
        log.record("a", &[]);
        log.record("b", &[]);
        assert_eq!(log.len(), 1);
        assert_eq!(log.tail(5)[0].kind, "b");
    }

    #[test]
    fn concurrent_recording_assigns_unique_seqs() {
        let log = EventLog::new(1024);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        log.record("e", &[]);
                    }
                });
            }
        });
        assert_eq!(log.recorded(), 400);
        let mut seqs: Vec<u64> = log.tail(1024).iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
    }

    #[test]
    fn contended_dump_is_monotone_in_seq_and_time() {
        // Timestamps are taken under the ring lock, so the dump must be
        // strictly increasing in seq AND non-decreasing in ts_ns — no
        // interleaving of racing writers, ever.
        let log = EventLog::new(4096);
        std::thread::scope(|s| {
            for t in 0..8 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..200 {
                        log.record("e", &[("t", &t.to_string()), ("i", &i.to_string())]);
                    }
                });
            }
        });
        let tail = log.tail(4096);
        assert_eq!(tail.len(), 1600);
        for pair in tail.windows(2) {
            assert!(pair[1].seq == pair[0].seq + 1, "seq gap: {} -> {}", pair[0].seq, pair[1].seq);
            assert!(
                pair[1].ts_ns >= pair[0].ts_ns,
                "timestamp inversion at seq {}: {} then {}",
                pair[1].seq,
                pair[0].ts_ns,
                pair[1].ts_ns
            );
        }
    }
}
