//! Continuous profiling: a std-only sampling profiler over phase
//! markers.
//!
//! Instead of unwinding stacks (no libunwind in a hermetic build),
//! every event loop publishes *where it is* into a [`PhaseCell`] — one
//! relaxed byte store per phase transition — and a watcher thread
//! (owned by the server) calls [`Profiler::sample_once`] on a fixed
//! interval, attributing one sample to each cell's current phase.
//! Over time the per-phase sample counts converge on the wall-time
//! split between accepting, reading, parsing, backend work, and
//! writing, with near-zero steady-state overhead on the hot path.
//!
//! The learner can publish through the same API (register a cell, park
//! it in [`Phase::Learn`] while a phase runs); the `PROFILE` verb
//! renders [`Profiler::render`] plus per-layer span self-time from the
//! span ring.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Number of distinct phases.
pub const PHASE_COUNT: usize = 8;

/// What a serving (or learning) thread is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Parked in the poller, no work pending.
    Idle = 0,
    /// Accepting new connections.
    Accept = 1,
    /// Reading request bytes off sockets.
    Read = 2,
    /// Framing/parsing request lines.
    Parse = 3,
    /// Inside `Backend::query`/`query_batch` (router, cache, engine).
    Backend = 4,
    /// Rendering responses into the out-buffer.
    Write = 5,
    /// Flushing the out-buffer to the socket.
    Flush = 6,
    /// Learner pipeline work (non-serving threads).
    Learn = 7,
}

impl Phase {
    /// All phases in code order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Idle,
        Phase::Accept,
        Phase::Read,
        Phase::Parse,
        Phase::Backend,
        Phase::Write,
        Phase::Flush,
        Phase::Learn,
    ];

    /// Stable lowercase name (exposition label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Accept => "accept",
            Phase::Read => "read",
            Phase::Parse => "parse",
            Phase::Backend => "backend",
            Phase::Write => "write",
            Phase::Flush => "flush",
            Phase::Learn => "learn",
        }
    }

    fn from_u8(v: u8) -> Phase {
        *Phase::ALL.get(v as usize).unwrap_or(&Phase::Idle)
    }
}

/// One thread's current-phase marker. Writing is a single relaxed
/// store; the watcher reads it asynchronously.
#[derive(Debug)]
pub struct PhaseCell(AtomicU8);

impl PhaseCell {
    /// A cell starting in [`Phase::Idle`].
    pub fn new() -> PhaseCell {
        PhaseCell(AtomicU8::new(Phase::Idle as u8))
    }

    /// Publishes the current phase.
    #[inline]
    pub fn set(&self, p: Phase) {
        self.0.store(p as u8, Ordering::Relaxed);
    }

    /// The last published phase.
    pub fn get(&self) -> Phase {
        Phase::from_u8(self.0.load(Ordering::Relaxed))
    }
}

impl Default for PhaseCell {
    fn default() -> PhaseCell {
        PhaseCell::new()
    }
}

/// The sampling profiler: a set of registered [`PhaseCell`]s plus
/// per-phase sample tallies. Registration takes a mutex (once per
/// thread); sampling takes the same mutex briefly off the hot path;
/// phase publishing is lock-free.
pub struct Profiler {
    cells: Mutex<Vec<Arc<PhaseCell>>>,
    samples: [AtomicU64; PHASE_COUNT],
    rounds: AtomicU64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler {
            cells: Mutex::new(Vec::new()),
            samples: std::array::from_fn(|_| AtomicU64::new(0)),
            rounds: AtomicU64::new(0),
        }
    }

    /// Registers (and returns) a new phase cell for the calling
    /// thread. Cells live as long as the profiler; a thread that exits
    /// simply leaves its cell parked in whatever phase it last set —
    /// park in [`Phase::Idle`] before exiting.
    pub fn register(&self) -> Arc<PhaseCell> {
        let cell = Arc::new(PhaseCell::new());
        self.cells.lock().expect("profiler lock poisoned").push(cell.clone());
        cell
    }

    /// Number of registered cells.
    pub fn cells(&self) -> usize {
        self.cells.lock().expect("profiler lock poisoned").len()
    }

    /// Takes one sampling round: attributes one sample per registered
    /// cell to that cell's current phase. Called by the watcher thread
    /// on a fixed interval.
    pub fn sample_once(&self) {
        let cells = self.cells.lock().expect("profiler lock poisoned");
        for cell in cells.iter() {
            self.samples[cell.get() as usize].fetch_add(1, Ordering::Relaxed);
        }
        drop(cells);
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed sampling rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Per-phase sample tallies, indexed by `Phase as usize`.
    pub fn phase_samples(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|i| self.samples[i].load(Ordering::Relaxed))
    }

    /// Renders the profile in the metrics exposition grammar. All
    /// phases appear (zeros included) so consumers can grep
    /// deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE hoiho_profile_rounds_total counter\n");
        out.push_str(&format!("hoiho_profile_rounds_total {}\n", self.rounds()));
        out.push_str("# TYPE hoiho_profile_cells gauge\n");
        out.push_str(&format!("hoiho_profile_cells {}\n", self.cells()));
        out.push_str("# TYPE hoiho_profile_samples_total counter\n");
        let samples = self.phase_samples();
        for p in Phase::ALL {
            out.push_str(&format!(
                "hoiho_profile_samples_total{{phase=\"{}\"}} {}\n",
                p.name(),
                samples[p as usize]
            ));
        }
        out
    }
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_round_trip_and_default_idle() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_u8(p as u8), p);
        }
        assert_eq!(Phase::from_u8(200), Phase::Idle);
        let cell = PhaseCell::new();
        assert_eq!(cell.get(), Phase::Idle);
        cell.set(Phase::Backend);
        assert_eq!(cell.get(), Phase::Backend);
    }

    #[test]
    fn samples_attribute_to_current_phase() {
        let prof = Profiler::new();
        let a = prof.register();
        let b = prof.register();
        assert_eq!(prof.cells(), 2);
        a.set(Phase::Backend);
        b.set(Phase::Read);
        prof.sample_once();
        a.set(Phase::Write);
        prof.sample_once();
        let s = prof.phase_samples();
        assert_eq!(prof.rounds(), 2);
        assert_eq!(s[Phase::Backend as usize], 1);
        assert_eq!(s[Phase::Read as usize], 2);
        assert_eq!(s[Phase::Write as usize], 1);
        assert_eq!(s.iter().sum::<u64>(), 4, "one sample per cell per round");
    }

    #[test]
    fn render_lists_every_phase() {
        let prof = Profiler::new();
        let cell = prof.register();
        cell.set(Phase::Parse);
        prof.sample_once();
        let text = prof.render();
        assert!(text.contains("hoiho_profile_rounds_total 1"), "{text}");
        assert!(text.contains("hoiho_profile_cells 1"), "{text}");
        for p in Phase::ALL {
            assert!(
                text.contains(&format!("phase=\"{}\"", p.name())),
                "missing {}: {text}",
                p.name()
            );
        }
        assert!(text.contains("hoiho_profile_samples_total{phase=\"parse\"} 1"), "{text}");
    }

    #[test]
    fn concurrent_publishing_is_safe() {
        let prof = Profiler::new();
        let cells: Vec<_> = (0..4).map(|_| prof.register()).collect();
        std::thread::scope(|s| {
            for cell in &cells {
                s.spawn(move || {
                    for i in 0..1000u32 {
                        cell.set(if i % 2 == 0 { Phase::Read } else { Phase::Write });
                    }
                });
            }
            for _ in 0..50 {
                prof.sample_once();
            }
        });
        assert_eq!(prof.phase_samples().iter().sum::<u64>(), 200);
    }
}
