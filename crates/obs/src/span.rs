//! Request-scoped distributed tracing for the serving path.
//!
//! [`crate::trace`] covers the *learner* (long-lived phases, one
//! mutex-guarded `Vec` per process); this module covers the *server*,
//! where a span is nanoseconds long and the recorder sits on the
//! request hot path. The pieces:
//!
//! * [`Sampler`] — a deterministic 1-in-N head sampler. Request `seq`
//!   is sampled iff `seq % every == 0`, and the 64-bit [`TraceId`] it
//!   allocates is a pure function of `(seed, seq)` — so a fixed seed
//!   and a fixed request script reproduce the *same* trace ids and the
//!   same span sets, which the propagation tests rely on.
//! * [`TraceCtx`] — the per-request context threaded through
//!   `Backend::query`, the shard router, the cache probe, and engine
//!   extraction. `TraceCtx::off()` is the common case: one `Option`
//!   check per layer, no allocation, no atomics — the unsampled path
//!   stays bit-identical.
//! * [`SpanRing`] — a lock-free bounded ring of fixed-width span
//!   records. Writers claim a slot with one `fetch_add` and publish
//!   through a per-slot seqlock version word; readers (the `TRACES`
//!   verb) detect and skip torn or overwritten slots. Nothing blocks,
//!   nothing allocates, old spans are overwritten.
//!
//! Span records are fixed-width on purpose: a span is
//! `(trace, id, parent, layer, detail, shard, generation, start_ns,
//! end_ns, tid)` — layers and details are small enums, not strings, so
//! a record packs into seven `u64` words. Rendering fans out from the
//! same records: JSONL over the wire ([`render_jsonl`], strict inverse
//! [`parse_jsonl`]), Chrome trace-event JSON ([`to_chrome_json`]) and
//! collapsed-stack text ([`to_collapsed`], flamegraph.pl compatible),
//! plus per-layer self-time attribution ([`self_time_by_layer`]) for
//! the `PROFILE` exposition.

use crate::json_str;
use crate::trace::{current_tid, Clock, WallClock};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Parent value of a root span.
pub const NO_PARENT: u32 = u32::MAX;

/// Shard tag of a span that did not route through a shard.
pub const NO_SHARD: u32 = u32::MAX;

/// Default span-ring capacity (records, not traces).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Per-trace span budget: one request records at most this many spans
/// (a 4096-item `BATCH` must not flush the whole ring); excess spans
/// count into [`SpanRing::dropped`].
pub const SPAN_BUDGET: u32 = 64;

/// Which layer of the serving path a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Layer {
    /// The protocol loop: one root span per request.
    Server = 0,
    /// Shard routing (`ShardRouter::lookup`).
    Router = 1,
    /// The response-cache probe.
    Cache = 2,
    /// Compiled-regex extraction (`Generation::query` / shard engine).
    Engine = 3,
}

impl Layer {
    /// All layers, in code order.
    pub const ALL: [Layer; 4] = [Layer::Server, Layer::Router, Layer::Cache, Layer::Engine];

    /// Stable lowercase name (wire format).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Server => "server",
            Layer::Router => "router",
            Layer::Cache => "cache",
            Layer::Engine => "engine",
        }
    }

    /// Inverse of [`Layer::name`].
    pub fn from_name(s: &str) -> Option<Layer> {
        Layer::ALL.into_iter().find(|l| l.name() == s)
    }

    fn from_u8(v: u8) -> Option<Layer> {
        Layer::ALL.into_iter().find(|&l| l as u8 == v)
    }
}

/// Span detail codes: what happened inside the layer. One flat
/// namespace (codes are unique across layers) so the wire format needs
/// no layer-qualified names.
pub mod detail {
    /// No detail recorded.
    pub const NONE: u8 = 0;
    /// Server verbs.
    pub const QUERY: u8 = 1;
    pub const BATCH: u8 = 2;
    pub const STATS: u8 = 3;
    pub const STATS_SUFFIX: u8 = 4;
    pub const STATS_CLUSTER: u8 = 5;
    pub const METRICS: u8 = 6;
    pub const EVENTS: u8 = 7;
    pub const RELOAD: u8 = 8;
    pub const SHUTDOWN: u8 = 9;
    pub const TRACES: u8 = 10;
    pub const PROFILE: u8 = 11;
    pub const SLO: u8 = 12;
    pub const OTHER: u8 = 13;
    /// Router dispatch outcomes.
    pub const EXACT: u8 = 14;
    pub const FALLBACK: u8 = 15;
    pub const ROUTE_MISS: u8 = 16;
    /// Cache-probe outcomes.
    pub const HIT: u8 = 17;
    pub const MISS: u8 = 18;
    pub const STALE: u8 = 19;
    /// Engine extraction outcomes.
    pub const EXTRACT_HIT: u8 = 20;
    pub const EXTRACT_MISS: u8 = 21;

    const NAMES: [(u8, &str); 22] = [
        (NONE, "none"),
        (QUERY, "query"),
        (BATCH, "batch"),
        (STATS, "stats"),
        (STATS_SUFFIX, "stats_suffix"),
        (STATS_CLUSTER, "stats_cluster"),
        (METRICS, "metrics"),
        (EVENTS, "events"),
        (RELOAD, "reload"),
        (SHUTDOWN, "shutdown"),
        (TRACES, "traces"),
        (PROFILE, "profile"),
        (SLO, "slo"),
        (OTHER, "other"),
        (EXACT, "exact"),
        (FALLBACK, "fallback"),
        (ROUTE_MISS, "route_miss"),
        (HIT, "hit"),
        (MISS, "miss"),
        (STALE, "stale"),
        (EXTRACT_HIT, "extract_hit"),
        (EXTRACT_MISS, "extract_miss"),
    ];

    /// Stable lowercase name (wire format); unknown codes render as
    /// `"none"`.
    pub fn name(code: u8) -> &'static str {
        NAMES.iter().find(|&&(c, _)| c == code).map(|&(_, n)| n).unwrap_or("none")
    }

    /// Inverse of [`name`].
    pub fn code(name: &str) -> Option<u8> {
        NAMES.iter().find(|&&(_, n)| n == name).map(|&(c, _)| c)
    }
}

/// One recorded request span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqSpan {
    /// 64-bit trace id (nonzero), shared by every span of one request.
    pub trace: u64,
    /// Span id within the trace (root is 0, then creation order).
    pub id: u32,
    /// Parent span id, [`NO_PARENT`] for the root.
    pub parent: u32,
    /// Which layer recorded the span.
    pub layer: Layer,
    /// What happened ([`detail`] code).
    pub detail: u8,
    /// Shard index, [`NO_SHARD`] when not routed through a shard.
    pub shard: u32,
    /// Shard generation (or routing epoch for fallback/miss routes).
    pub generation: u64,
    /// Clock nanoseconds at span open.
    pub start_ns: u64,
    /// Clock nanoseconds at span close.
    pub end_ns: u64,
    /// Dense recorder thread id.
    pub tid: u64,
}

impl ReqSpan {
    /// Span duration (0 on clock anomalies).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// True for the request's root span.
    pub fn is_root(&self) -> bool {
        self.parent == NO_PARENT
    }

    /// `layer:detail`, the frame name used by the Chrome and collapsed
    /// renderers.
    pub fn frame(&self) -> String {
        format!("{}:{}", self.layer.name(), detail::name(self.detail))
    }

    /// Renders the span as one JSON object (no trailing newline).
    /// `parent`/`shard` are `null` when absent; `trace` is 16 hex
    /// digits.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"trace\":\"{:016x}\",\"span\":{}", self.trace, self.id);
        if self.parent == NO_PARENT {
            out.push_str(",\"parent\":null");
        } else {
            out.push_str(&format!(",\"parent\":{}", self.parent));
        }
        out.push_str(&format!(
            ",\"layer\":{},\"detail\":{}",
            json_str(self.layer.name()),
            json_str(detail::name(self.detail))
        ));
        if self.shard == NO_SHARD {
            out.push_str(",\"shard\":null");
        } else {
            out.push_str(&format!(",\"shard\":{}", self.shard));
        }
        out.push_str(&format!(
            ",\"generation\":{},\"start_ns\":{},\"end_ns\":{},\"tid\":{}}}",
            self.generation, self.start_ns, self.end_ns, self.tid
        ));
        out
    }

    /// Strict inverse of [`ReqSpan::to_json`]. Accepts exactly the
    /// fields this module emits (any order), rejecting unknown keys,
    /// bad types, and unknown layer/detail names.
    pub fn from_json(line: &str) -> Result<ReqSpan, String> {
        let body = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| "span object must be {...}".to_string())?;
        let mut trace = None;
        let mut id = None;
        let mut parent = None;
        let mut layer = None;
        let mut det = None;
        let mut shard = None;
        let mut generation = None;
        let mut start_ns = None;
        let mut end_ns = None;
        let mut tid = None;
        for part in body.split(',') {
            let (k, v) = part
                .split_once(':')
                .ok_or_else(|| format!("bad field {part:?}"))?;
            let k = k.trim().strip_prefix('"').and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("bad key {k:?}"))?;
            let v = v.trim();
            let unquoted = v.strip_prefix('"').and_then(|s| s.strip_suffix('"'));
            match k {
                "trace" => {
                    let hex = unquoted.ok_or_else(|| "trace must be a string".to_string())?;
                    trace = Some(
                        u64::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad trace {hex:?}: {e}"))?,
                    );
                }
                "span" => id = Some(parse_u64(v, "span")? as u32),
                "parent" => {
                    parent = Some(if v == "null" {
                        NO_PARENT
                    } else {
                        parse_u64(v, "parent")? as u32
                    });
                }
                "layer" => {
                    let name = unquoted.ok_or_else(|| "layer must be a string".to_string())?;
                    layer = Some(
                        Layer::from_name(name).ok_or_else(|| format!("unknown layer {name:?}"))?,
                    );
                }
                "detail" => {
                    let name = unquoted.ok_or_else(|| "detail must be a string".to_string())?;
                    det = Some(
                        detail::code(name).ok_or_else(|| format!("unknown detail {name:?}"))?,
                    );
                }
                "shard" => {
                    shard = Some(if v == "null" {
                        NO_SHARD
                    } else {
                        parse_u64(v, "shard")? as u32
                    });
                }
                "generation" => generation = Some(parse_u64(v, "generation")?),
                "start_ns" => start_ns = Some(parse_u64(v, "start_ns")?),
                "end_ns" => end_ns = Some(parse_u64(v, "end_ns")?),
                "tid" => tid = Some(parse_u64(v, "tid")?),
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(ReqSpan {
            trace: trace.ok_or("missing trace")?,
            id: id.ok_or("missing span")?,
            parent: parent.ok_or("missing parent")?,
            layer: layer.ok_or("missing layer")?,
            detail: det.ok_or("missing detail")?,
            shard: shard.ok_or("missing shard")?,
            generation: generation.ok_or("missing generation")?,
            start_ns: start_ns.ok_or("missing start_ns")?,
            end_ns: end_ns.ok_or("missing end_ns")?,
            tid: tid.ok_or("missing tid")?,
        })
    }
}

fn parse_u64(v: &str, key: &str) -> Result<u64, String> {
    v.parse::<u64>().map_err(|e| format!("bad {key} {v:?}: {e}"))
}

// ---------------------------------------------------------------------------
// Sampler

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The trace id for request `seq` under `seed` — pure, so a fixed seed
/// and script reproduce identical ids across runs.
pub fn trace_id_for(seed: u64, seq: u64) -> u64 {
    let id = mix64(seed ^ seq.wrapping_mul(GOLDEN));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Deterministic 1-in-N head sampler. `every == 0` disables sampling
/// (the default); `every == 1` samples everything. Reconfigurable
/// live; configuration resets the request sequence.
#[derive(Debug)]
pub struct Sampler {
    every: AtomicU64,
    seed: AtomicU64,
    seq: AtomicU64,
}

impl Sampler {
    /// A disabled sampler (`sample()` always `None`).
    pub fn disabled() -> Sampler {
        Sampler { every: AtomicU64::new(0), seed: AtomicU64::new(0), seq: AtomicU64::new(0) }
    }

    /// A sampler taking every `every`-th request, ids seeded by `seed`.
    pub fn new(every: u64, seed: u64) -> Sampler {
        let s = Sampler::disabled();
        s.configure(every, seed);
        s
    }

    /// Reconfigures rate and seed and resets the request sequence.
    pub fn configure(&self, every: u64, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
        self.seq.store(0, Ordering::Relaxed);
        self.every.store(every, Ordering::Relaxed);
    }

    /// True when sampling is on.
    pub fn enabled(&self) -> bool {
        self.every.load(Ordering::Relaxed) != 0
    }

    /// The configured rate (0 = off).
    pub fn every(&self) -> u64 {
        self.every.load(Ordering::Relaxed)
    }

    /// Consumes one request slot; `Some(trace_id)` iff this request is
    /// sampled. One relaxed load when disabled, one extra relaxed RMW
    /// when enabled.
    #[inline]
    pub fn sample(&self) -> Option<u64> {
        let every = self.every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if seq % every != 0 {
            return None;
        }
        Some(trace_id_for(self.seed.load(Ordering::Relaxed), seq))
    }
}

// ---------------------------------------------------------------------------
// Span ring

const WORDS: usize = 7;

struct Slot {
    /// Seqlock version: odd while a writer is mid-publish.
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// Lock-free bounded ring of span records. Writers claim slots with a
/// single `fetch_add` on a global head and publish via a per-slot
/// version word; the reader ([`SpanRing::dump`]) skips slots that are
/// mid-write or were overwritten during the copy. Capacity is fixed at
/// construction; the newest spans win.
pub struct SpanRing {
    slots: Vec<Slot>,
    head: AtomicU64,
    dropped: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl SpanRing {
    /// A ring holding the most recent `capacity` spans (clamped to ≥1)
    /// on the real monotonic clock.
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing::with_clock(capacity, Arc::new(WallClock::new()))
    }

    /// A ring on an injected clock (tests pin time with
    /// [`crate::ManualClock`]).
    pub fn with_clock(capacity: usize, clock: Arc<dyn Clock>) -> SpanRing {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            clock,
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current clock nanoseconds (span timestamps come from here).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Total spans ever pushed.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans not recorded because a trace exhausted [`SPAN_BUDGET`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn note_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Pushes one record (lock-free; overwrites the oldest slot when
    /// full).
    pub fn push(&self, span: &ReqSpan) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        slot.version.fetch_add(1, Ordering::Acquire);
        let w = &slot.words;
        w[0].store(span.trace, Ordering::Relaxed);
        w[1].store(((span.id as u64) << 32) | span.parent as u64, Ordering::Relaxed);
        w[2].store(
            ((span.layer as u64) << 56)
                | ((span.detail as u64) << 48)
                | ((span.shard as u64) << 16)
                | (span.tid & 0xFFFF),
            Ordering::Relaxed,
        );
        w[3].store(span.start_ns, Ordering::Relaxed);
        w[4].store(span.end_ns, Ordering::Relaxed);
        w[5].store(span.generation, Ordering::Relaxed);
        w[6].store(claim, Ordering::Relaxed);
        slot.version.fetch_add(1, Ordering::Release);
    }

    /// The most recent `n` spans, oldest first. Slots that are
    /// mid-write or were overwritten while dumping are skipped (the
    /// ring never blocks writers for a reader).
    pub fn dump(&self, n: usize) -> Vec<ReqSpan> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let avail = head.min(cap).min(n as u64);
        let mut out = Vec::with_capacity(avail as usize);
        for claim in (head - avail)..head {
            let slot = &self.slots[(claim % cap) as usize];
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                continue;
            }
            let w: [u64; WORDS] = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            if slot.version.load(Ordering::Acquire) != v1 || w[6] != claim {
                continue;
            }
            let Some(layer) = Layer::from_u8((w[2] >> 56) as u8) else { continue };
            out.push(ReqSpan {
                trace: w[0],
                id: (w[1] >> 32) as u32,
                parent: w[1] as u32,
                layer,
                detail: (w[2] >> 48) as u8,
                shard: (w[2] >> 16) as u32,
                generation: w[5],
                start_ns: w[3],
                end_ns: w[4],
                tid: w[2] & 0xFFFF,
            });
        }
        out
    }

    /// The most recent `n` spans as JSONL (oldest first, one object
    /// per line; empty string when none).
    pub fn render_jsonl(&self, n: usize) -> String {
        render_jsonl(&self.dump(n))
    }
}

// ---------------------------------------------------------------------------
// Trace context

struct ActiveCtx<'a> {
    ring: &'a SpanRing,
    trace: u64,
    next_id: Cell<u32>,
    parent: Cell<u32>,
    budget: u32,
}

/// The per-request tracing context threaded down the serving stack. An
/// unsampled request carries [`TraceCtx::off`] — a `None` that every
/// layer checks in one branch; a sampled one carries the ring, the
/// trace id, and the span-id allocator. Single-threaded by design (one
/// request is served on one thread), hence `Cell` not atomics.
pub struct TraceCtx<'a> {
    active: Option<ActiveCtx<'a>>,
}

impl<'a> TraceCtx<'a> {
    /// The disabled context: every [`TraceCtx::span`] is free and
    /// records nothing.
    pub fn off() -> TraceCtx<'static> {
        TraceCtx { active: None }
    }

    /// A sampled context recording into `ring` under `trace`, with the
    /// default [`SPAN_BUDGET`].
    pub fn sampled(ring: &'a SpanRing, trace: u64) -> TraceCtx<'a> {
        TraceCtx::with_budget(ring, trace, SPAN_BUDGET)
    }

    /// A sampled context with an explicit span budget.
    pub fn with_budget(ring: &'a SpanRing, trace: u64, budget: u32) -> TraceCtx<'a> {
        TraceCtx {
            active: Some(ActiveCtx {
                ring,
                trace,
                next_id: Cell::new(0),
                parent: Cell::new(NO_PARENT),
                budget,
            }),
        }
    }

    /// True when this request is sampled.
    pub fn is_sampled(&self) -> bool {
        self.active.is_some()
    }

    /// The trace id, when sampled.
    pub fn trace_id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.trace)
    }

    /// Opens a span under the current parent. The handle records on
    /// drop; nest handles lexically so parents restore in LIFO order.
    /// On a disabled context this is a no-op handle.
    #[inline]
    pub fn span(&self, layer: Layer) -> SpanHandle<'_> {
        let Some(a) = &self.active else { return SpanHandle { inner: None } };
        let id = a.next_id.get();
        if id >= a.budget {
            a.ring.note_dropped();
            return SpanHandle { inner: None };
        }
        a.next_id.set(id + 1);
        let parent = a.parent.get();
        a.parent.set(id);
        SpanHandle {
            inner: Some(HandleInner {
                ctx: a,
                id,
                parent,
                layer,
                detail: detail::NONE,
                shard: NO_SHARD,
                generation: 0,
                start_ns: a.ring.now_ns(),
            }),
        }
    }
}

struct HandleInner<'c> {
    ctx: &'c ActiveCtx<'c>,
    id: u32,
    parent: u32,
    layer: Layer,
    detail: u8,
    shard: u32,
    generation: u64,
    start_ns: u64,
}

/// An open span; closes (and records) on drop.
pub struct SpanHandle<'c> {
    inner: Option<HandleInner<'c>>,
}

impl SpanHandle<'_> {
    /// True when this handle will record (sampled and within budget).
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the [`detail`] code (what happened).
    pub fn detail(&mut self, code: u8) {
        if let Some(h) = &mut self.inner {
            h.detail = code;
        }
    }

    /// Tags the span with a shard index.
    pub fn shard(&mut self, shard: u32) {
        if let Some(h) = &mut self.inner {
            h.shard = shard;
        }
    }

    /// Tags the span with a shard generation (or routing epoch).
    pub fn generation(&mut self, generation: u64) {
        if let Some(h) = &mut self.inner {
            h.generation = generation;
        }
    }
}

impl Drop for SpanHandle<'_> {
    fn drop(&mut self) {
        let Some(h) = self.inner.take() else { return };
        h.ctx.parent.set(h.parent);
        let end_ns = h.ctx.ring.now_ns();
        h.ctx.ring.push(&ReqSpan {
            trace: h.ctx.trace,
            id: h.id,
            parent: h.parent,
            layer: h.layer,
            detail: h.detail,
            shard: h.shard,
            generation: h.generation,
            start_ns: h.start_ns,
            end_ns,
            tid: current_tid() & 0xFFFF,
        });
    }
}

// ---------------------------------------------------------------------------
// Renderers

/// Renders spans as JSONL (one object per line, trailing newline each;
/// empty string for none).
pub fn render_jsonl(spans: &[ReqSpan]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    out
}

/// Parses JSONL produced by [`render_jsonl`] (or the `TRACES` verb).
/// Blank lines are skipped; errors carry 1-based line numbers.
pub fn parse_jsonl(text: &str) -> Result<Vec<ReqSpan>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(ReqSpan::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders spans as a Chrome trace-event JSON document (`ph:"X"`
/// complete events; one viewer row per trace via `tid`), loadable in
/// `chrome://tracing` / Perfetto.
pub fn to_chrome_json(spans: &[ReqSpan]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":{},\"cat\":\"hoiho\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"{:016x}\",\"span\":{},\"parent\":{},\
             \"shard\":{},\"generation\":{}}}}}",
            json_str(&s.frame()),
            s.trace & 0x7FFF_FFFF,
            micros(s.start_ns),
            micros(s.duration_ns()),
            s.trace,
            s.id,
            if s.parent == NO_PARENT { -1i64 } else { s.parent as i64 },
            if s.shard == NO_SHARD { -1i64 } else { s.shard as i64 },
            s.generation,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Builds, per span, the `;`-joined frame stack from the root down
/// (following parent links within its trace), plus the span's
/// self-time (duration minus direct children).
fn stacks_and_self(spans: &[ReqSpan]) -> Vec<(String, u64)> {
    // Index spans per trace.
    let mut by_trace: BTreeMap<u64, BTreeMap<u32, &ReqSpan>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().insert(s.id, s);
    }
    let mut out = Vec::with_capacity(spans.len());
    for tree in by_trace.values() {
        let mut child_ns: BTreeMap<u32, u64> = BTreeMap::new();
        for s in tree.values() {
            if s.parent != NO_PARENT {
                *child_ns.entry(s.parent).or_default() += s.duration_ns();
            }
        }
        for s in tree.values() {
            let mut frames = vec![s.frame()];
            let mut cur = s.parent;
            // Parent chains are one trace deep (≤ SPAN_BUDGET); the
            // visited cap just guards against a corrupted ring record.
            let mut hops = 0;
            while cur != NO_PARENT && hops < SPAN_BUDGET {
                match tree.get(&cur) {
                    Some(p) => {
                        frames.push(p.frame());
                        cur = p.parent;
                    }
                    None => break,
                }
                hops += 1;
            }
            frames.reverse();
            let self_ns =
                s.duration_ns().saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            out.push((frames.join(";"), self_ns));
        }
    }
    out
}

/// Renders spans as collapsed-stack text (`stack;frames self_ns` per
/// line, aggregated and sorted) — the format flamegraph.pl and
/// inferno consume.
pub fn to_collapsed(spans: &[ReqSpan]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (stack, self_ns) in stacks_and_self(spans) {
        *agg.entry(stack).or_default() += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in agg {
        out.push_str(&format!("{stack} {ns}\n"));
    }
    out
}

/// Total self-time per layer across `spans` (duration minus direct
/// children) — the `PROFILE` exposition's span-attribution section.
pub fn self_time_by_layer(spans: &[ReqSpan]) -> [(Layer, u64); 4] {
    let mut totals = [0u64; 4];
    // stacks_and_self computes per-span self time; the last frame of
    // each stack is the span's own layer.
    let mut by_trace: BTreeMap<u64, BTreeMap<u32, &ReqSpan>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().insert(s.id, s);
    }
    for tree in by_trace.values() {
        let mut child_ns: BTreeMap<u32, u64> = BTreeMap::new();
        for s in tree.values() {
            if s.parent != NO_PARENT {
                *child_ns.entry(s.parent).or_default() += s.duration_ns();
            }
        }
        for s in tree.values() {
            let self_ns =
                s.duration_ns().saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            totals[s.layer as usize] += self_ns;
        }
    }
    [
        (Layer::Server, totals[0]),
        (Layer::Router, totals[1]),
        (Layer::Cache, totals[2]),
        (Layer::Engine, totals[3]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ManualClock;

    fn span(trace: u64, id: u32, parent: u32, layer: Layer, d: u8, t: (u64, u64)) -> ReqSpan {
        ReqSpan {
            trace,
            id,
            parent,
            layer,
            detail: d,
            shard: NO_SHARD,
            generation: 0,
            start_ns: t.0,
            end_ns: t.1,
            tid: 0,
        }
    }

    #[test]
    fn sampler_is_deterministic_and_one_in_n() {
        let a = Sampler::new(3, 42);
        let b = Sampler::new(3, 42);
        let ta: Vec<Option<u64>> = (0..9).map(|_| a.sample()).collect();
        let tb: Vec<Option<u64>> = (0..9).map(|_| b.sample()).collect();
        assert_eq!(ta, tb, "fixed seed ⇒ identical decisions and ids");
        assert_eq!(ta.iter().filter(|t| t.is_some()).count(), 3);
        assert!(ta[0].is_some() && ta[3].is_some() && ta[6].is_some());
        let other = Sampler::new(3, 43);
        assert_ne!(other.sample(), ta[0], "different seed ⇒ different ids");
        let off = Sampler::disabled();
        assert!(!off.enabled());
        assert_eq!(off.sample(), None);
    }

    #[test]
    fn trace_ids_nonzero_and_mixed() {
        let mut seen = std::collections::BTreeSet::new();
        for seq in 0..64 {
            let id = trace_id_for(7, seq);
            assert_ne!(id, 0);
            seen.insert(id);
        }
        assert_eq!(seen.len(), 64, "ids must not collide over a small script");
    }

    #[test]
    fn ctx_records_nested_spans_with_parent_edges() {
        let clock = Arc::new(ManualClock::new());
        let ring = SpanRing::with_clock(16, clock.clone());
        let ctx = TraceCtx::sampled(&ring, 0xABCD);
        {
            let mut root = ctx.span(Layer::Server);
            root.detail(detail::QUERY);
            clock.advance(10);
            {
                let mut r = ctx.span(Layer::Router);
                r.detail(detail::EXACT);
                r.shard(1);
                r.generation(3);
                clock.advance(5);
                {
                    let mut e = ctx.span(Layer::Engine);
                    e.detail(detail::EXTRACT_HIT);
                    clock.advance(2);
                }
                clock.advance(1);
            }
            clock.advance(4);
        }
        let spans = ring.dump(16);
        assert_eq!(spans.len(), 3);
        // Records land in close order (engine, router, server).
        assert_eq!(spans[0].layer, Layer::Engine);
        assert_eq!(spans[0].parent, 1);
        assert_eq!(spans[1].layer, Layer::Router);
        assert_eq!(spans[1].parent, 0);
        assert_eq!(spans[1].shard, 1);
        assert_eq!(spans[1].generation, 3);
        assert_eq!(spans[2].layer, Layer::Server);
        assert!(spans[2].is_root());
        assert_eq!(spans[2].duration_ns(), 22);
        assert_eq!(spans[1].duration_ns(), 8);
        assert_eq!(spans[0].duration_ns(), 2);
        assert!(spans.iter().all(|s| s.trace == 0xABCD));
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ring = SpanRing::new(4);
        let ctx = TraceCtx::off();
        assert!(!ctx.is_sampled());
        let mut h = ctx.span(Layer::Server);
        assert!(!h.active());
        h.detail(detail::QUERY);
        drop(h);
        assert_eq!(ring.recorded(), 0);
    }

    #[test]
    fn span_budget_drops_excess() {
        let clock = Arc::new(ManualClock::new());
        let ring = SpanRing::with_clock(64, clock);
        let ctx = TraceCtx::with_budget(&ring, 1, 2);
        for _ in 0..5 {
            ctx.span(Layer::Engine);
        }
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let clock = Arc::new(ManualClock::new());
        let ring = SpanRing::with_clock(4, clock);
        for i in 0..10u64 {
            ring.push(&span(i + 1, 0, NO_PARENT, Layer::Server, detail::QUERY, (i, i)));
        }
        let spans = ring.dump(100);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans.iter().map(|s| s.trace).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(ring.dump(2).iter().map(|s| s.trace).collect::<Vec<_>>(), vec![9, 10]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let ring = SpanRing::new(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..500u64 {
                        ring.push(&span(
                            (t << 32) | (i + 1),
                            i as u32,
                            NO_PARENT,
                            Layer::Engine,
                            detail::EXTRACT_HIT,
                            (i, i + 1),
                        ));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 2000);
        let spans = ring.dump(64);
        assert!(!spans.is_empty());
        for s in &spans {
            // A torn record would decode an inconsistent trace/id pair.
            assert_eq!(s.trace & 0xFFFF_FFFF, s.id as u64 + 1);
            assert_eq!(s.layer, Layer::Engine);
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let spans = vec![
            span(0xDEAD_BEEF, 0, NO_PARENT, Layer::Server, detail::QUERY, (5, 25)),
            ReqSpan {
                trace: 0xDEAD_BEEF,
                id: 1,
                parent: 0,
                layer: Layer::Router,
                detail: detail::EXACT,
                shard: 2,
                generation: 7,
                start_ns: 6,
                end_ns: 20,
                tid: 3,
            },
        ];
        let jsonl = render_jsonl(&spans);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"parent\":null"));
        assert!(jsonl.contains("\"shard\":2"));
        let back = parse_jsonl(&jsonl).unwrap();
        assert_eq!(back, spans);
        assert!(parse_jsonl("{\"nope\":1}").unwrap_err().contains("line 1"));
        assert!(ReqSpan::from_json("{}").is_err());
    }

    #[test]
    fn chrome_json_has_complete_events() {
        let spans = vec![span(0x77, 0, NO_PARENT, Layer::Server, detail::QUERY, (1_000, 3_500))];
        let doc = to_chrome_json(&spans);
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"server:query\""));
        assert!(doc.contains("\"ts\":1.000"));
        assert!(doc.contains("\"dur\":2.500"));
        assert!(doc.contains("\"parent\":-1"));
        assert!(doc.trim_end().ends_with("]}"));
    }

    #[test]
    fn collapsed_stacks_aggregate_self_time() {
        let spans = vec![
            span(1, 0, NO_PARENT, Layer::Server, detail::QUERY, (0, 100)),
            span(1, 1, 0, Layer::Engine, detail::EXTRACT_HIT, (10, 40)),
            // Second trace, same shape — must fold into the same stacks.
            span(2, 0, NO_PARENT, Layer::Server, detail::QUERY, (200, 260)),
            span(2, 1, 0, Layer::Engine, detail::EXTRACT_HIT, (210, 230)),
        ];
        let collapsed = to_collapsed(&spans);
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2, "{collapsed}");
        // server self = (100-30) + (60-20) = 110; engine self = 30+20.
        assert!(lines.contains(&"server:query 110"), "{collapsed}");
        assert!(lines.contains(&"server:query;engine:extract_hit 50"), "{collapsed}");
        let self_time = self_time_by_layer(&spans);
        assert_eq!(self_time[Layer::Server as usize], (Layer::Server, 110));
        assert_eq!(self_time[Layer::Engine as usize], (Layer::Engine, 50));
    }

    #[test]
    fn layer_and_detail_names_round_trip() {
        for l in Layer::ALL {
            assert_eq!(Layer::from_name(l.name()), Some(l));
        }
        for code in [detail::QUERY, detail::EXACT, detail::STALE, detail::EXTRACT_MISS] {
            assert_eq!(detail::code(detail::name(code)), Some(code));
        }
        assert_eq!(detail::code("bogus"), None);
        assert_eq!(Layer::from_name("bogus"), None);
    }
}
