//! Umbrella crate for the Hoiho-ASN reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one import root. See `DESIGN.md` for the system inventory.

pub use hoiho;
pub use hoiho_asdb as asdb;
pub use hoiho_bdrmap as bdrmap;
pub use hoiho_cluster as cluster;
pub use hoiho_itdk as itdk;
pub use hoiho_netsim as netsim;
pub use hoiho_obs as obs;
pub use hoiho_pdb as pdb;
pub use hoiho_psl as psl;
pub use hoiho_scenario as scenario;
pub use hoiho_serve as serve;
