//! End-to-end pipeline on the synthetic Internet (the paper's full
//! system): generate a topology, run traceroutes, infer router
//! ownership with bdrmapIT, learn naming conventions with Hoiho, then
//! feed the extracted ASNs back into bdrmapIT (§5) and score everything
//! against ground truth.
//!
//! Run with: `cargo run --release --example internet_pipeline`

use hoiho::learner::{learn_all, LearnConfig};
use hoiho_bdrmap::integrate::{integrate, ConventionSet};
use hoiho_bdrmap::refine::{self, RefineConfig};
use hoiho_itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_netsim::SimConfig;
use hoiho_psl::PublicSuffixList;
use std::collections::BTreeMap;

fn main() {
    // 1. Synthetic Internet + traceroute campaign + router graph.
    let spec = SnapshotSpec {
        label: "2020-01".into(),
        method: Method::BdrmapIt,
        cfg: SimConfig::default(),
        alias_split: 0.3,
    };
    println!("building snapshot ({} ASes)...", spec.cfg.total_ases());
    let snap = BuiltSnapshot::build(&spec);
    println!(
        "  routers={} observed-interfaces={} traces={}",
        snap.graph.len(),
        snap.graph.by_addr.len(),
        snap.input.traces.len()
    );

    // 2. Hoiho learns conventions from the bdrmapIT-annotated hostnames.
    let psl = PublicSuffixList::builtin();
    let training = snap.training_set();
    let groups = training.by_suffix(&psl);
    let learned = learn_all(&groups, &LearnConfig::default());
    println!(
        "\nlearned {} conventions from {} suffixes ({} hostnames):",
        learned.len(),
        groups.len(),
        training.len()
    );
    for lc in learned.iter().take(8) {
        println!(
            "  {:<28} {:9} PPV={:5.1}%  {}",
            lc.convention.suffix,
            lc.class.label(),
            lc.counts.ppv() * 100.0,
            lc.convention.regexes[0]
        );
    }
    if learned.len() > 8 {
        println!("  ... and {} more", learned.len() - 8);
    }

    // 3. Integrate extracted ASNs into bdrmapIT (§5).
    let owners = refine::infer(&snap.graph, &snap.input, &RefineConfig::default());
    // Single-ASN conventions (Figure 2 style) annotate the supplier, not
    // the operator — exclude them from integration.
    let conventions = ConventionSet::new(
        learned.iter().filter(|l| !l.single).map(|l| (l.convention.clone(), l.class)),
    );
    let mut hostnames = BTreeMap::new();
    for &addr in snap.graph.by_addr.keys() {
        if let Some(iface) = snap.internet.iface_at(addr) {
            if let Some(h) = iface.hostname.as_deref() {
                hostnames.insert(addr, h.to_string());
            }
        }
    }
    let res = integrate(&snap.graph, &snap.input, &owners, &hostnames, &conventions);
    println!(
        "\nintegration: {} annotated interfaces; agreement {:.1}% -> {:.1}%",
        res.annotated,
        res.initial_rate() * 100.0,
        res.final_rate() * 100.0
    );
    let used = res.decisions.iter().filter(|d| d.used).count();
    println!(
        "  of {} incongruent hostnames, {} adopted, {} rejected as stale",
        res.decisions.len(),
        used,
        res.decisions.len() - used
    );

    // 4. Score against ground truth.
    let score = |owners: &[Option<u32>]| -> (usize, usize) {
        let mut ok = 0;
        let mut all = 0;
        for (&addr, &ridx) in &snap.graph.by_addr {
            if !hostnames.contains_key(&addr) {
                continue;
            }
            let Some(truth) = snap.internet.owner_of_addr(addr) else { continue };
            let Some(inf) = owners[ridx] else { continue };
            all += 1;
            if inf == truth || snap.input.org.siblings(inf, truth) {
                ok += 1;
            }
        }
        (ok, all)
    };
    let (ok0, all0) = score(&owners);
    let (ok1, all1) = score(&res.owners);
    let err = |ok: usize, all: usize| {
        let wrong = all - ok;
        if wrong == 0 {
            "0".to_string()
        } else {
            format!("1/{:.1}", all as f64 / wrong as f64)
        }
    };
    println!("\nground truth over named interfaces:");
    println!(
        "  before: {}/{} correct ({:.1}%), error rate {}",
        ok0,
        all0,
        100.0 * ok0 as f64 / all0 as f64,
        err(ok0, all0)
    );
    println!(
        "  after:  {}/{} correct ({:.1}%), error rate {}",
        ok1,
        all1,
        100.0 * ok1 as f64 / all1 as f64,
        err(ok1, all1)
    );
}
