//! Quickstart: learn a naming convention from a handful of annotated
//! hostnames and use it to extract ASNs from new ones.
//!
//! Run with: `cargo run --example quickstart`

use hoiho::learner::{learn_suffix, LearnConfig};
use hoiho::training::{Observation, TrainingSet};
use hoiho_psl::PublicSuffixList;

fn main() {
    // Training data: (training ASN, interface address, PTR hostname).
    // The training ASN comes from heuristic router-ownership inference
    // (RouterToAsAssignment, bdrmapIT) or PeeringDB — here it is given.
    let rows: &[(u32, [u8; 4], &str)] = &[
        (64500, [192, 0, 2, 1], "as64500-xe-1-2-0.fra.tele-nova.net"),
        (64501, [192, 0, 2, 9], "as64501-ae3.lhr.tele-nova.net"),
        (64502, [192, 0, 2, 17], "as64502-ge0-1.fra.tele-nova.net"),
        (65010, [192, 0, 2, 33], "as65010-te0-0-1.ams.tele-nova.net"),
        (64499, [192, 0, 2, 40], "te0-0-1.cr2.fra.tele-nova.net"), // infra, no ASN
        (64499, [192, 0, 2, 44], "xe-1-2-0.cr1.lhr.tele-nova.net"),
    ];

    let mut training = TrainingSet::new();
    for &(asn, addr, hostname) in rows {
        training.push(Observation::new(hostname, addr, asn));
    }

    // Group hostnames by registrable domain (public suffix + 1).
    let psl = PublicSuffixList::builtin();
    let suffixes = training.by_suffix(&psl);
    println!("training: {} hostnames in {} suffix group(s)\n", training.len(), suffixes.len());

    // Learn the convention for each suffix.
    for st in &suffixes {
        let Some(learned) = learn_suffix(st, &LearnConfig::default()) else {
            println!("{}: no convention learned", st.suffix);
            continue;
        };
        println!("suffix {}", learned.convention.suffix);
        for r in &learned.convention.regexes {
            println!("  regex: {r}");
        }
        println!(
            "  TP={} FP={} FN={} ATP={} PPV={:.1}%  class={}  taxonomy={}",
            learned.counts.tp,
            learned.counts.fp,
            learned.counts.fnn,
            learned.counts.atp(),
            learned.counts.ppv() * 100.0,
            learned.class.label(),
            learned.taxonomy.label(),
        );

        // Apply the convention to hostnames never seen in training.
        println!("\n  extraction on unseen hostnames:");
        for h in [
            "as65020-ae12.syd.tele-nova.net",
            "as3356-hu0-1-0-3.nyc.tele-nova.net",
            "ge2-0.cr3.syd.tele-nova.net",
        ] {
            match learned.convention.extract(h) {
                Some(asn) => println!("    {h} -> AS{asn}"),
                None => println!("    {h} -> (no ASN embedded)"),
            }
        }
    }
}
