//! Stale-hostname arbitration (paper §5, Figures 2 and 3).
//!
//! Demonstrates the three hard cases the modified bdrmapIT must
//! arbitrate:
//!   1. the hostname is right and the heuristic inference is wrong
//!      (adopt the extracted ASN);
//!   2. the hostname is stale — it names a previous neighbor with no
//!      topological support (keep the inference);
//!   3. the hostname has a typo the §3.1 congruence rule tolerates.
//!
//! Run with: `cargo run --example stale_detection`

use hoiho::classify::NcClass;
use hoiho::{NamingConvention, Regex};
use hoiho_asdb::{addr_parse, As2Org, AsRelationships, IxpDirectory, Prefix, RouteTable};
use hoiho_bdrmap::graph::RouterGraph;
use hoiho_bdrmap::integrate::{integrate, ConventionSet};
use hoiho_bdrmap::{InferenceInput, Trace};
use std::collections::BTreeMap;

fn a(s: &str) -> u32 {
    addr_parse(s).expect("addr")
}

fn main() {
    // Topology: provider AS 3356 (10/8) supplies /31s to customers
    // AS 64500 (20/8) and AS 64510 (30/8).
    let mut bgp = RouteTable::new();
    bgp.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), 3356);
    bgp.insert("20.0.0.0/8".parse::<Prefix>().unwrap(), 64500);
    bgp.insert("30.0.0.0/8".parse::<Prefix>().unwrap(), 64510);
    let mut rel = AsRelationships::new();
    rel.add_provider_customer(3356, 64500);
    rel.add_provider_customer(3356, 64510);

    // Two traceroutes crossing the two customer borders.
    let input = InferenceInput {
        bgp,
        rel,
        org: As2Org::new(),
        ixps: IxpDirectory::new(),
        aliases: vec![],
        traces: vec![
            Trace {
                vp_asn: 65000,
                dst: a("20.0.0.99"),
                hops: vec![
                    Some(a("10.0.0.1")),
                    Some(a("10.0.9.1")), // 64500's border, supplied by 3356
                    Some(a("20.0.0.1")),
                    Some(a("20.0.0.99")),
                ],
            },
            Trace {
                vp_asn: 65000,
                dst: a("30.0.0.99"),
                hops: vec![
                    Some(a("10.0.0.1")),
                    Some(a("10.0.9.3")), // 64510's border, supplied by 3356
                    Some(a("30.0.0.1")),
                    Some(a("30.0.0.99")),
                ],
            },
        ],
    };
    let graph = RouterGraph::build(&input);

    // Provider's learned convention: `as<neighbor>.<pop>.prov.net`.
    let nc = NamingConvention::new(
        "prov.net",
        vec![Regex::parse(r"^as(\d+)\.[a-z\d-]+\.prov\.net$").unwrap()],
    );
    let conventions = ConventionSet::new([(nc, NcClass::Good)]);

    // Hostnames the provider assigned to the far-side addresses.
    //   10.0.9.1 — correct annotation (AS64500)
    //   10.0.9.3 — STALE: names AS65333, a neighbor long gone.
    let hostnames = BTreeMap::from([
        (a("10.0.9.1"), "as64500.fra.prov.net".to_string()),
        (a("10.0.9.3"), "as65333.lhr.prov.net".to_string()),
    ]);

    // Pretend the heuristic elected the supplier for both borders (the
    // Figure 1 failure mode).
    let mut owners = vec![None; graph.len()];
    owners[graph.by_addr[&a("10.0.9.1")]] = Some(3356);
    owners[graph.by_addr[&a("10.0.9.3")]] = Some(64510); // topology got this one right

    println!("before integration:");
    for (addr, h) in &hostnames {
        let r = graph.by_addr[addr];
        println!(
            "  {} {:28} inferred={:?}",
            hoiho_asdb::addr_to_string(*addr),
            h,
            owners[r]
        );
    }

    let res = integrate(&graph, &input, &owners, &hostnames, &conventions);

    println!("\ndecisions on incongruent hostnames:");
    for d in &res.decisions {
        println!(
            "  {} {:28} extracted=AS{} initial={:?} -> {}",
            hoiho_asdb::addr_to_string(d.addr),
            d.hostname,
            d.extracted,
            d.initial,
            if d.used { "USED (reasonable)" } else { "REJECTED (stale)" }
        );
    }

    println!("\nafter integration:");
    for addr in hostnames.keys() {
        let r = graph.by_addr[addr];
        println!("  {} inferred={:?}", hoiho_asdb::addr_to_string(*addr), res.owners[r]);
    }
    println!(
        "\nagreement: {}/{} before, {}/{} after",
        res.agree_initial, res.annotated, res.agree_final, res.annotated
    );

    // Typo tolerance (Figure 3a): the §3.1 congruence rule.
    println!("\ntypo congruence (§3.1):");
    for (extracted, training) in [("24940", 20940u32), ("20732", 207032), ("605", 6057)] {
        let c = hoiho::apparent::congruence(extracted, training);
        println!("  extracted {extracted} vs training AS{training}: {c:?}");
    }
}
