//! Reproduces the paper's Figure 4 walkthrough: learning a naming
//! convention for the Equinix suffix across the four phases.
//!
//! The sixteen hostnames (a–p) and their training ASNs are exactly the
//! figure's, including the typo (hostname h embeds 22822 while the
//! training ASN is 22282) and the two Microsoft interfaces whose
//! embedded sibling ASNs (8069, 8074) disagree with the training ASN
//! 8075.
//!
//! Run with: `cargo run --example equinix_figure4`

use hoiho::eval::{classify_host, evaluate, Outcome};
use hoiho::learner::{learn_suffix, LearnConfig};
use hoiho::phases::{base, classes, merge};
use hoiho::training::{Observation, SuffixTraining};
use hoiho::Regex;

/// Figure 4's training rows: (training ASN, hostname, label).
const ROWS: &[(u32, &str, char)] = &[
    (109, "109.sgw.equinix.com", 'a'),
    (714, "714.os.equinix.com", 'b'),
    (714, "714.me1.equinix.com", 'c'),
    (714, "p714.sgw.equinix.com", 'd'),
    (714, "s714.sgw.equinix.com", 'e'),
    (24115, "p24115.mel.equinix.com", 'f'),
    (24115, "s24115.tyo.equinix.com", 'g'),
    (22282, "22822-2.tyo.equinix.com", 'h'),
    (24482, "24482-fr5-ix.equinix.com", 'i'),
    (54827, "54827-dc5-ix2.equinix.com", 'j'),
    (55247, "55247-ch3-ix.equinix.com", 'k'),
    (2906, "netflix.zh2.corp.eu.equinix.com", 'l'),
    (19324, "ipv4.dosarrest.eqix.equinix.com", 'm'),
    (8075, "8069.tyo.equinix.com", 'n'),
    (8075, "8074.hkg.equinix.com", 'o'),
    (55923, "45437-sy1-ix.equinix.com", 'p'),
];

fn training() -> SuffixTraining {
    let obs: Vec<Observation> = ROWS
        .iter()
        .map(|&(asn, h, _)| Observation::new(h, [198, 51, 100, 7], asn))
        .collect();
    SuffixTraining::build("equinix.com", &obs)
}

/// Prints a regex's evaluation in the figure's format.
fn show(st: &SuffixTraining, tag: &str, regexes: &[Regex]) {
    let counts = evaluate(regexes, &st.hosts);
    let mut tp = String::new();
    let mut fp = String::new();
    let mut fnn = String::new();
    for (host, &(_, _, label)) in st.hosts.iter().zip(ROWS) {
        match classify_host(regexes, host) {
            Outcome::TruePositive(_) => tp.push(label),
            Outcome::FalsePositive(_) => fp.push(label),
            Outcome::FalseNegative => fnn.push(label),
            Outcome::TrueNegative => {}
        }
    }
    let shown: Vec<String> = regexes.iter().map(|r| r.to_string()).collect();
    println!(
        "{tag:<4} {}\n     TP[{tp}] FP[{fp}] FN[{fnn}]  ATP={}",
        shown.join("  +  "),
        counts.atp()
    );
}

fn main() {
    let st = training();
    let rx = |s: &str| Regex::parse(s).unwrap();

    println!("== Phase 1: generate base regexes (§3.2) ==");
    let base_pool = base::generate(&st, &base::BaseConfig::default());
    println!("generated {} distinct base regexes; the figure's examples:", base_pool.len());
    show(&st, "#1", &[rx(r"^(\d+)\.[^\.]+\.equinix\.com$")]);
    show(&st, "#2", &[rx(r"^p(\d+)\.[^\.]+\.equinix\.com$")]);
    show(&st, "#3", &[rx(r"^s(\d+)\.[^\.]+\.equinix\.com$")]);
    show(&st, "#4", &[rx(r"^(\d+)-.+\.equinix\.com$")]);
    for want in ["#1", "#2", "#3", "#4"] {
        let _ = want;
    }

    println!("\n== Phase 2: merge regexes (§3.3) ==");
    let merged = merge::merge(&base_pool);
    println!("{} merged regexes; the figure's #5:", merged.len());
    show(&st, "#5", &[rx(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$")]);

    println!("\n== Phase 3: embed character classes (§3.4) ==");
    let mut pool = base_pool.clone();
    pool.extend(merged);
    let specialised = classes::embed_classes(&pool, &st.hosts);
    println!("{} specialised regexes; the figure's #6:", specialised.len());
    show(&st, "#6", &[rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$")]);

    println!("\n== Phase 4 + selection: regex sets (§3.5, §3.6) ==");
    show(
        &st,
        "#7",
        &[
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^(\d+)-.+\.equinix\.com$"),
        ],
    );

    println!("\n== Full pipeline result ==");
    let learned = learn_suffix(&st, &LearnConfig::default()).expect("convention learned");
    for r in &learned.convention.regexes {
        println!("  {r}");
    }
    println!(
        "TP={} FP={} FN={} ATP={} PPV={:.1}% class={}",
        learned.counts.tp,
        learned.counts.fp,
        learned.counts.fnn,
        learned.counts.atp(),
        learned.counts.ppv() * 100.0,
        learned.class.label()
    );
}
